"""Chaos integration: a 4-replica fleet rides out a mid-run crash.

The acceptance scenario from the chaos harness: one replica is killed
mid-run with work in flight.  With health checking and restart enabled,
the fleet must finish at least as many requests as the no-fault baseline
minus the crash's in-flight set (in fact it re-dispatches them all, so
nothing is lost), the percentiles must stay NaN-free, and goodput may
degrade only boundedly.
"""

import math

from repro.baselines import ChunkedPrefillServer
from repro.bench import run_chaos
from repro.cluster import FleetConfig, HealthConfig
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.workloads import sharegpt_workload

N_REQUESTS = 48
RATE = 16.0


def factory(sim, cfg):
    return ChunkedPrefillServer(sim, cfg, token_budget=256)


def fleet_config():
    return FleetConfig(replicas=4, health=HealthConfig())


def workload():
    return sharegpt_workload(N_REQUESTS, rate=RATE, seed=61)


def crash_plan():
    return FaultPlan(
        specs=(FaultSpec(at=1.0, kind=FaultKind.REPLICA_KILL, target="r1", restart_after=1.0),)
    )


class TestChaosFleet:
    def test_crash_recovery_bounds_losses_and_goodput(self, cfg_8b_single):
        baseline = run_chaos(
            factory, cfg_8b_single, workload(), fleet=fleet_config(), plan=FaultPlan()
        )
        chaos = run_chaos(
            factory, cfg_8b_single, workload(), fleet=fleet_config(), plan=crash_plan()
        )

        assert baseline.drained and chaos.drained
        assert baseline.conserved() and chaos.conserved()
        assert baseline.summary.requests_finished == N_REQUESTS

        inflight_at_crash = chaos.faults["faults/inflight_at_kill"][0]
        assert inflight_at_crash > 0  # the crash actually interrupted work

        # Floor from the issue: completions may drop by at most the set that
        # was in flight on the dead replica...
        finished = chaos.summary.requests_finished
        assert finished >= baseline.summary.requests_finished - inflight_at_crash
        # ...and the failover path actually does better: it re-dispatches
        # every victim, so the scripted crash loses zero admitted requests.
        assert finished == N_REQUESTS
        assert chaos.conservation["lost"] == 0
        assert chaos.conservation["retried"] >= inflight_at_crash
        assert chaos.fleet_failures == 1 and chaos.fleet_restarts == 1

        # Percentiles stay real numbers through the crash.
        for report in (chaos.summary, *chaos.per_replica.values()):
            stats = report.as_dict()
            for key, value in stats.items():
                if isinstance(value, float):
                    assert not math.isnan(value), key

        # Bounded degradation: the crash costs goodput (victims re-run and
        # wait out the restart) but the fleet stays a serving system, not a
        # brick — useful throughput holds at least half the baseline.
        assert chaos.summary.useful_throughput >= 0.5 * baseline.summary.useful_throughput

    def test_crash_report_is_reproducible(self, cfg_8b_single):
        runs = [
            run_chaos(factory, cfg_8b_single, workload(), fleet=fleet_config(), plan=crash_plan())
            for _ in range(2)
        ]
        assert runs[0].to_json() == runs[1].to_json()
