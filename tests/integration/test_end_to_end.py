"""Integration tests: the paper's headline comparisons at test scale.

These runs are deliberately small (tens of requests) so the suite stays
fast; the full-scale reproductions live in benchmarks/.
"""

import pytest

from repro.baselines import ChunkedPrefillServer, LoongServeServer, SGLangPDServer
from repro.core import MuxWiseServer
from repro.sim import Simulator
from repro.workloads import sharegpt_workload, toolagent_workload


def run(cls, cfg, workload, **kwargs):
    sim = Simulator()
    server = cls(sim, cfg, **kwargs)
    server.submit(workload)
    server.run()
    return server.metrics.summarize(), server


class TestMuxWiseVsChunked:
    def test_muxwise_meets_slo_where_chunked_fails(self, cfg_70b):
        """Multi-turn load that chunked-prefill cannot serve within TBT."""
        wl = toolagent_workload(60, request_rate=1.0, seed=21)
        mux, _ = run(MuxWiseServer, cfg_70b, wl)
        chunked, _ = run(ChunkedPrefillServer, cfg_70b, wl, token_budget=256)
        assert mux.slo_met
        assert not chunked.slo_met

    def test_muxwise_ttft_beats_chunked(self, cfg_70b):
        wl = toolagent_workload(60, request_rate=1.0, seed=21)
        mux, _ = run(MuxWiseServer, cfg_70b, wl)
        chunked, _ = run(ChunkedPrefillServer, cfg_70b, wl, token_budget=256)
        assert mux.ttft_p99 < chunked.ttft_p99

    def test_muxwise_tbt_unaffected_by_long_reuse(self, cfg_70b):
        """§2.3.2: long reused contexts break chunking, not multiplexing."""
        wl = toolagent_workload(40, request_rate=0.8, seed=22)
        mux, _ = run(MuxWiseServer, cfg_70b, wl)
        assert mux.tbt_p99 <= cfg_70b.slo.tbt


class TestMuxWiseVsDisaggregation:
    def test_muxwise_ttft_beats_sglang_pd(self, cfg_70b):
        """Static disaggregation leaves decode GPUs idle during bursts."""
        wl = toolagent_workload(60, request_rate=1.2, seed=23)
        mux, _ = run(MuxWiseServer, cfg_70b, wl)
        pd, _ = run(SGLangPDServer, cfg_70b, wl)
        assert mux.ttft_p99 < pd.ttft_p99

    def test_aggregated_cache_beats_split_pools(self, cfg_70b):
        """MuxWise's single pool yields a higher hit rate than SGLang-PD's
        split pools on multi-turn traffic (Fig. 5's consequence)."""
        wl = toolagent_workload(60, request_rate=0.8, seed=24)
        _, mux_server = run(MuxWiseServer, cfg_70b, wl)
        _, pd_server = run(SGLangPDServer, cfg_70b, wl)
        mux_hits = mux_server.instance.cache.stats.hit_rate
        pd_stats = pd_server.prefill_inst.cache.stats
        pd_hits = pd_stats.hit_rate
        assert mux_hits >= pd_hits

    def test_loongserve_recompute_penalty(self, cfg_70b):
        """LoongServe recomputes multi-turn history; MuxWise reuses it."""
        wl = toolagent_workload(50, request_rate=0.8, seed=25)
        _, mux_server = run(MuxWiseServer, cfg_70b, wl)
        _, loong_server = run(LoongServeServer, cfg_70b, wl)
        assert loong_server.metrics._prefilled_tokens > mux_server.metrics._prefilled_tokens


class TestLlama8B:
    def test_muxwise_meets_50ms_slo(self, cfg_8b):
        wl = sharegpt_workload(100, rate=10.0, seed=26)
        mux, _ = run(MuxWiseServer, cfg_8b, wl)
        assert mux.slo_met
        assert cfg_8b.slo.tbt == pytest.approx(0.050)

    def test_single_gpu_muxwise_beats_chunked_throughput(self, cfg_8b_single):
        """§4.3.1: on 1xA100 ShareGPT, MuxWise sustains load chunked cannot."""
        wl = sharegpt_workload(150, rate=9.0, seed=27)
        mux, _ = run(MuxWiseServer, cfg_8b_single, wl)
        chunked, _ = run(ChunkedPrefillServer, cfg_8b_single, wl, token_budget=128)
        # "...improves goodput by 1.2x while maintaining similar TBT":
        # at equal rate MuxWise has far better TTFT and comparable TBT.
        assert mux.slo_met
        assert mux.ttft_avg < chunked.ttft_avg
        assert mux.tbt_p99 <= chunked.tbt_p99 * 1.6
