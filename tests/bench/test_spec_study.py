"""Tests for the speculative-decoding bench study (repro.bench.spec)."""

import json

import pytest

from repro.bench.spec import SpecPoint, SpecStudy, run_spec_study

SCALE = 0.05


@pytest.fixture(scope="module")
def study() -> SpecStudy:
    return run_spec_study(scale=SCALE, seed=0)


class TestStudyShape:
    def test_full_grid_present(self, study):
        assert len(study.points) == 3 * 2  # default rates x draft lens
        assert {p.draft_len for p in study.points} == {2, 4}

    def test_accepted_tokens_rise_with_acceptance_rate(self, study):
        assert study.accepted_monotone
        for draft_len in (2, 4):
            row = study.points_for(draft_len)
            observed = [p.mux_accepted_per_step for p in row]
            assert observed == sorted(observed)
            for point in row:
                assert point.mux_accepted_per_step == pytest.approx(
                    point.expected_tokens, rel=0.25
                )

    def test_gap_shifts_toward_disaggregation(self, study):
        """Verification makes decode compute-bound, so the disaggregated
        decode instance (idle compute under plain decode) gains more than
        the multiplexed node: the mux-minus-disagg gap must shrink from its
        spec-off baseline at high acceptance."""
        assert study.gap_shift
        base_gap = (
            study.baseline["mux_useful_throughput"]
            - study.baseline["disagg_useful_throughput"]
        )
        for draft_len in (2, 4):
            assert study.points_for(draft_len)[-1].gap < base_gap

    def test_deterministic_payload(self, study):
        again = run_spec_study(scale=SCALE, seed=0)
        assert json.dumps(study.as_dict(), sort_keys=True) == json.dumps(
            again.as_dict(), sort_keys=True
        )


class TestStudyHelpers:
    def test_gap_sign_convention(self):
        point = SpecPoint(
            rate=0.5,
            draft_len=2,
            expected_tokens=1.75,
            mux_accepted_per_step=1.7,
            disagg_accepted_per_step=1.7,
            mux_useful_throughput=300.0,
            disagg_useful_throughput=200.0,
            mux_tbt_p99=0.01,
            disagg_tbt_p99=0.01,
            mux_decode_sms=16.0,
        )
        assert point.gap == 100.0
        assert point.as_dict()["gap"] == 100.0

    def test_custom_grid_is_respected(self):
        study = run_spec_study(rates=(0.3, 0.9), draft_lens=(3,), scale=0.02, seed=1)
        assert len(study.points) == 2
        assert all(p.draft_len == 3 for p in study.points)
