"""Tests for the KV-tier bandwidth sweep and failover-restore study."""

import json

from repro.bench.kv_tiers import (
    DEFAULT_BANDWIDTHS,
    BandwidthPoint,
    KVTiersStudy,
    failover_restore_study,
    run_kv_tiers_study,
)

SCALE = 0.05


def make_point(bandwidth, mux=100.0, disagg=80.0) -> BandwidthPoint:
    return BandwidthPoint(
        bandwidth=bandwidth,
        mux_useful_throughput=mux,
        disagg_useful_throughput=disagg,
        mux_ttft_p50=0.1,
        disagg_ttft_p50=0.2,
    )


class TestStudyShape:
    def test_crossover_requires_narrowing_gap(self):
        study = KVTiersStudy(
            points=[make_point(1e9, disagg=50.0), make_point(1e11, disagg=90.0)],
            failover={},
        )
        assert study.crossover
        widening = KVTiersStudy(
            points=[make_point(1e9, disagg=90.0), make_point(1e11, disagg=50.0)],
            failover={},
        )
        assert not widening.crossover
        assert not KVTiersStudy(points=[make_point(1e9)], failover={}).crossover

    def test_gap_sign_convention(self):
        assert make_point(1e9, mux=100.0, disagg=80.0).gap == 20.0

    def test_as_dict_is_json_serialisable(self):
        study = KVTiersStudy(
            points=[make_point(1e9)], failover={"restored_tokens": 5}, extras={"x": 1.0}
        )
        round_trip = json.loads(json.dumps(study.as_dict(), sort_keys=True))
        assert round_trip["crossover"] is True or round_trip["crossover"] is False
        assert round_trip["failover"]["restored_tokens"] == 5


class TestEndToEnd:
    def test_study_demonstrates_crossover_and_restore(self):
        """The acceptance run: mux wins at low bandwidth, the gap narrows
        as bandwidth rises, and the killed replica's surviving tiers
        restore at least one prefix."""
        study = run_kv_tiers_study(scale=SCALE, seed=0)
        assert len(study.points) == len(DEFAULT_BANDWIDTHS)
        assert study.crossover
        assert study.points[0].gap > 0
        assert study.points[-1].gap < study.points[0].gap
        assert study.failover["restored_tokens"] > 0
        assert study.failover["drained"] == 1
        # Bandwidths come out sorted ascending regardless of input order.
        bws = [p.bandwidth for p in study.points]
        assert bws == sorted(bws)

    def test_study_is_deterministic(self):
        first = run_kv_tiers_study(scale=SCALE, seed=0).as_dict()
        second = run_kv_tiers_study(scale=SCALE, seed=0).as_dict()
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_failover_ledger_conserves_demotions(self):
        ledger = failover_restore_study(scale=SCALE, seed=0)
        # Everything promoted (restored included) was first demoted.
        assert ledger["promoted_tokens"] <= ledger["demoted_tokens"]
        assert ledger["restored_tokens"] <= ledger["promoted_tokens"]
