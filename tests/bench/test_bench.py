"""Unit tests for the bench harness: runner, goodput sweeps, reports."""


from repro.bench import (
    GoodputResult,
    RatePoint,
    goodput_ratio,
    goodput_sweep,
    latency_table,
    run_system,
    series,
    tail_latency_table,
    throughput_table,
)
from repro.core import MuxWiseServer
from repro.baselines import ChunkedPrefillServer
from repro.workloads import sharegpt_workload


class TestRunner:
    def test_run_system_produces_summary(self, cfg_70b):
        wl = sharegpt_workload(30, rate=2.0, seed=1)
        result = run_system(lambda sim, cfg: MuxWiseServer(sim, cfg), cfg_70b, wl)
        assert result.summary.requests_finished == 30
        assert 0.0 <= result.cache_hit_rate <= 1.0
        assert result.sm_utilization > 0.0
        assert "bubble_ratio" in result.extras

    def test_stability_heuristic(self, cfg_70b):
        wl = sharegpt_workload(30, rate=2.0, seed=1)
        result = run_system(lambda sim, cfg: MuxWiseServer(sim, cfg), cfg_70b, wl)
        assert result.stable
        assert result.meets_slo == result.summary.slo_met

    def test_disaggregated_system_aggregates_instances(self, cfg_70b):
        from repro.baselines import SGLangPDServer

        wl = sharegpt_workload(20, rate=1.0, seed=2)
        result = run_system(lambda sim, cfg: SGLangPDServer(sim, cfg), cfg_70b, wl)
        assert result.summary.requests_finished == 20


class TestGoodputSweep:
    def test_sweep_finds_knee(self, cfg_70b):
        sweep = goodput_sweep(
            "MuxWise",
            lambda sim, cfg: MuxWiseServer(sim, cfg),
            cfg_70b,
            lambda rate: sharegpt_workload(40, rate=rate, seed=3),
            rates=[1.0, 4.0],
        )
        assert sweep.goodput >= 1.0
        assert len(sweep.points) >= 1

    def test_sweep_stops_after_consecutive_failures(self, cfg_70b):
        """An overloaded chunked server should trip the stop condition."""
        sweep = goodput_sweep(
            "Chunked",
            lambda sim, cfg: ChunkedPrefillServer(sim, cfg, token_budget=256),
            cfg_70b,
            lambda rate: sharegpt_workload(250, rate=rate, seed=4),
            rates=[40.0, 60.0, 80.0, 100.0],
            stop_after_failures=1,
        )
        assert len(sweep.points) < 4

    def test_goodput_ratio(self):
        a = GoodputResult(system="a", points=[])
        b = GoodputResult(system="b", points=[])
        assert goodput_ratio(a, b) == float("inf")

    def test_point_at(self, cfg_70b):
        sweep = goodput_sweep(
            "MuxWise",
            lambda sim, cfg: MuxWiseServer(sim, cfg),
            cfg_70b,
            lambda rate: sharegpt_workload(20, rate=rate, seed=5),
            rates=[2.0],
        )
        assert sweep.point_at(2.0) is not None
        assert sweep.point_at(99.0) is None


class TestReports:
    def make_summary(self, cfg_70b):
        wl = sharegpt_workload(15, rate=1.0, seed=6)
        return run_system(lambda sim, cfg: MuxWiseServer(sim, cfg), cfg_70b, wl)

    def test_latency_table_contains_all_rows(self, cfg_70b):
        result = self.make_summary(cfg_70b)
        text = latency_table({"MuxWise": result.summary, "Other": result.summary})
        assert "MuxWise" in text and "Other" in text
        assert "TTFT avg" in text

    def test_tail_latency_table(self, cfg_70b):
        result = self.make_summary(cfg_70b)
        text = tail_latency_table({"MuxWise": result.summary})
        assert "TBT p99" in text
        assert ("yes" in text) or ("no" in text)

    def test_throughput_table(self, cfg_70b):
        result = self.make_summary(cfg_70b)
        text = throughput_table({"MuxWise": result})
        assert "Useful Tok/s" in text and "GPU util" in text

    def test_series_formatting(self):
        text = series("fig", [1.0, 2.0], [10.0, 20.0], "rate", "tbt")
        assert "fig" in text
        assert len(text.splitlines()) == 3
