"""Tests for the simulator perf harness (repro.bench.perf).

The golden fingerprints below pin the *simulation results* of the three
canonical scenarios at a small scale.  They are byte-stable by contract:
any change — an optimisation that reorders float arithmetic, a scheduler
tweak, a metrics fix — that alters them must be deliberate, and the golden
updated in the same commit with an explanation.
"""

import json

import pytest

from repro.bench.perf import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    TIER_SCALES,
    PerfReport,
    ScenarioTiming,
    run_perf,
)

#: Scale used for the golden run; small enough for a unit test, large
#: enough that every scenario exercises batching, caching and faults.
GOLDEN_SCALE = 0.05

#: Deterministic results of ``run_perf(scale=GOLDEN_SCALE)``.  Regenerate
#: with ``python -m repro perf --scale 0.05 --fingerprint`` after any
#: intentional behaviour change.
GOLDEN_RESULTS = {
    "agentic_rag": {
        "events": 91466,
        "fingerprint": "ba50ddb0431139bc7d2d68da7e5683d34b34a7f3101a5a062199b698601e5e3b",
        "peak_event_queue": 41,
    },
    # chaos_4_replicas moved when the round-robin liveness bug was fixed:
    # the policy now routes around a stalled/killed replica during the
    # kill->detection window instead of feeding it, so the chaos trace
    # loses fewer requests and the event stream differs.
    "chaos_4_replicas": {
        "events": 3203,
        "fingerprint": "47957045ed4f684ea50f3b2790dc6febf32b7ef04b3d28d76534eaad22b94b18",
        "peak_event_queue": 15,
    },
    "hetero_fleet": {
        "events": 96601,
        "fingerprint": "8c35e0474ead3cc6ad044b9edeec4a029743300f504adedc32671a5d8aa9d623",
        "peak_event_queue": 120,
    },
    "kv_tiers": {
        "events": 81928,
        "fingerprint": "69e278e426f781611af12a42bc0a131f6f5898dc9eaaac49d316d30cc27b0bdd",
        "peak_event_queue": 65,
    },
    "fleet_4_replicas": {
        "events": 6102,
        "fingerprint": "99a44a988cf062e2850b88100238a330e4fc5bcf6db1882fbebc9803b870d196",
        "peak_event_queue": 40,
    },
    "single_goodput": {
        "events": 4168,
        "fingerprint": "c1147d43a9ad0a98eeef8693d9bc5feb57ac15554c615152ba75e42c708bfe4f",
        "peak_event_queue": 10,
    },
    "spec_decoding": {
        "events": 7788,
        "fingerprint": "3e889eebf87da1b5fbdc2bbd9396292bcfa05880a632da8232b156d78c7f1ce3",
        "peak_event_queue": 8,
    },
    "tenancy_wfq_brownout": {
        "events": 2806,
        "fingerprint": "0d3c07560ed0e36b07a281602a663f8c4343045060824068a8e9ec902cf27f22",
        "peak_event_queue": 24,
    },
}


#: Deterministic results of the smoke scenarios at the committed "10"
#: tier — the CI ``scale-smoke`` contract.  Regenerate with
#: ``python -m repro perf --scale 10 --scenarios single_goodput,tenancy_wfq_brownout --fingerprint``.
GOLDEN_RESULTS_SCALE_10 = {
    "single_goodput": {
        "events": 63754,
        "fingerprint": "a937e6a5a8cd6c422d6f987251f17b8da98f9bf416f6422ced343104cd259220",
        "peak_event_queue": 2000,
    },
    "tenancy_wfq_brownout": {
        "events": 47150,
        "fingerprint": "69b259a59d2cee9df6fa82c92d5e5c0f43efb1948bd3b68776639903bfd02878",
        "peak_event_queue": 1250,
    },
}


@pytest.fixture(scope="module")
def golden_run() -> PerfReport:
    return run_perf(scale=GOLDEN_SCALE)


class TestGoldenFingerprints:
    def test_results_match_golden(self, golden_run):
        assert golden_run.fingerprints() == GOLDEN_RESULTS

    def test_fingerprints_stable_across_runs(self, golden_run):
        again = run_perf(scale=GOLDEN_SCALE)
        assert again.fingerprint_json() == golden_run.fingerprint_json()

    def test_repeats_agree(self):
        # run_perf itself raises if repeats fingerprint differently.
        report = run_perf(scenarios=["single_goodput"], scale=GOLDEN_SCALE, repeats=2)
        assert report.scenarios["single_goodput"].fingerprint == (
            GOLDEN_RESULTS["single_goodput"]["fingerprint"]
        )


class TestScaleTiers:
    def test_scale10_smoke_fingerprints(self):
        """The committed "10" tier: smoke scenarios at 10x workload."""
        report = run_perf(scenarios=list(SMOKE_SCENARIOS), scale=TIER_SCALES["10"])
        assert report.fingerprints() == GOLDEN_RESULTS_SCALE_10

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown tier"):
            run_perf(scenarios=["single_goodput"], scale=GOLDEN_SCALE, tiers=["7"])

    def test_tier_payload_layout(self):
        report = PerfReport(scale=1.0)
        report.scenarios["s"] = ScenarioTiming(
            name="s", fingerprint="f", events=10, peak_event_queue=5, wall_s=1.0
        )
        tier = PerfReport(scale=10.0)
        tier.scenarios["s"] = ScenarioTiming(
            name="s", fingerprint="g", events=100, peak_event_queue=50, wall_s=4.0
        )
        report.tiers["10"] = tier
        payload = json.loads(report.to_json())
        assert payload["schema"] == 1
        assert payload["tiers"]["10"]["scale"] == 10.0
        assert payload["tiers"]["10"]["results"]["s"]["fingerprint"] == "g"
        # Tier-aware comparison: a changed tier fingerprint is flagged.
        baseline = json.loads(report.to_json())
        baseline["tiers"]["10"]["results"]["s"]["fingerprint"] = "0" * 64
        problems = report.compare_results(baseline)
        assert len(problems) == 1 and problems[0].startswith("tier 10:")
        # ... and a slow tier run is flagged by the timing comparison.
        baseline = json.loads(report.to_json())
        baseline["tiers"]["10"]["timings"]["s"]["wall_s"] = 1.0
        problems = report.compare_timings(baseline, max_regression=2.0)
        assert len(problems) == 1 and problems[0].startswith("tier 10:")

    def test_missing_tier_flagged(self):
        report = PerfReport(scale=1.0)
        problems = report.compare_results({"tiers": {"10": {"results": {}}}})
        assert problems == ["tier 10: missing from this run"]


class TestSpecMemoization:
    """Regression guard for the spec hot path: position rates are derived
    once per session, not once per verify step."""

    def test_position_rates_computed_once_per_session(self):
        from repro.spec.config import PositionAcceptance, SpecConfig
        from repro.spec.runtime import SpecSession

        calls = []

        class CountingAcceptance(PositionAcceptance):
            def position_rate(self, base, position):
                calls.append(position)
                return super().position_rate(base, position)

        spec = SpecConfig(acceptance=CountingAcceptance(base=0.8, decay=0.9), draft_len=4)
        session = SpecSession(spec, index=0)
        assert calls == [0, 1, 2, 3]  # derived once, at session creation
        for _ in range(200):
            session.sample_step(spec, max_emit=5)
        assert calls == [0, 1, 2, 3]  # sample_step never re-derives

    def test_memoized_rates_match_direct_derivation(self):
        from repro.spec.config import PositionAcceptance, SpecConfig
        from repro.spec.runtime import SpecSession

        acceptance = PositionAcceptance(base=0.8, decay=0.9)
        spec = SpecConfig(acceptance=acceptance, draft_len=6)
        session = SpecSession(spec, index=3)
        assert session.position_rates == tuple(
            acceptance.position_rate(session.base_rate, i) for i in range(6)
        )

    def test_rng_stream_unchanged_by_memoization(self):
        """Bit-exact contract: same seed, same emitted-token sequence."""
        import random

        from repro.spec.config import PositionAcceptance, SpecConfig
        from repro.spec.runtime import SpecSession, _SESSION_SEED_MIX

        acceptance = PositionAcceptance(base=0.8, decay=0.9)
        spec = SpecConfig(acceptance=acceptance, draft_len=4, seed=7)
        session = SpecSession(spec, index=2)
        # Reference: the pre-memoization per-step derivation, replayed on
        # an identical RNG.
        rng = random.Random((spec.seed << 32) ^ (2 * _SESSION_SEED_MIX))
        base = acceptance.request_rate(rng)
        assert session.base_rate == base

        def reference_step():
            accepted = 0
            rejected = False
            for i in range(spec.draft_len):
                if not rejected and rng.random() < acceptance.position_rate(base, i):
                    accepted += 1
                else:
                    rejected = True
                    rng.random()
            return min(accepted + 1, 5)

        for _ in range(500):
            assert session.sample_step(spec, max_emit=5) == reference_step()


class TestHarnessMechanics:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_perf(scenarios=["nope"], scale=GOLDEN_SCALE)

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_perf(scenarios=["single_goodput"], repeats=0)

    def test_scenario_registry_is_complete(self):
        assert set(SCENARIOS) == set(GOLDEN_RESULTS)

    def test_report_json_round_trips(self, golden_run):
        payload = json.loads(golden_run.to_json())
        assert payload["schema"] == 1
        assert payload["scale"] == GOLDEN_SCALE
        assert set(payload["results"]) == set(GOLDEN_RESULTS)
        for timing in payload["timings"].values():
            assert timing["wall_s"] >= 0.0

    def test_compare_results_flags_fingerprint_change(self, golden_run):
        baseline = json.loads(golden_run.to_json())
        baseline["results"]["fleet_4_replicas"]["fingerprint"] = "0" * 64
        problems = golden_run.compare_results(baseline)
        assert len(problems) == 1
        assert "fleet_4_replicas" in problems[0]

    def test_compare_results_flags_missing_scenario(self, golden_run):
        baseline = {"results": {"brand_new_scenario": {"fingerprint": "x"}}}
        problems = golden_run.compare_results(baseline)
        assert problems == ["brand_new_scenario: scenario missing from this run"]

    def test_compare_timings_flags_regression(self):
        report = PerfReport(scale=1.0)
        report.scenarios["s"] = ScenarioTiming(
            name="s", fingerprint="f", events=10, peak_event_queue=5, wall_s=10.0
        )
        baseline = {"timings": {"s": {"wall_s": 1.0}}}
        problems = report.compare_timings(baseline, max_regression=2.0)
        assert len(problems) == 1 and "exceeds" in problems[0]
        assert report.compare_timings(baseline, max_regression=20.0) == []

    def test_compare_timings_ignores_zero_baseline(self):
        report = PerfReport()
        report.scenarios["s"] = ScenarioTiming(
            name="s", fingerprint="f", events=1, peak_event_queue=1, wall_s=5.0
        )
        assert report.compare_timings({"timings": {"s": {"wall_s": 0.0}}}, 2.0) == []

    def test_events_per_sec(self):
        timing = ScenarioTiming(
            name="s", fingerprint="f", events=500, peak_event_queue=1, wall_s=0.5
        )
        assert timing.events_per_sec == 1000.0
        zero = ScenarioTiming(
            name="s", fingerprint="f", events=500, peak_event_queue=1, wall_s=0.0
        )
        assert zero.events_per_sec == 0.0
