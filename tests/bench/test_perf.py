"""Tests for the simulator perf harness (repro.bench.perf).

The golden fingerprints below pin the *simulation results* of the three
canonical scenarios at a small scale.  They are byte-stable by contract:
any change — an optimisation that reorders float arithmetic, a scheduler
tweak, a metrics fix — that alters them must be deliberate, and the golden
updated in the same commit with an explanation.
"""

import json

import pytest

from repro.bench.perf import SCENARIOS, PerfReport, ScenarioTiming, run_perf

#: Scale used for the golden run; small enough for a unit test, large
#: enough that every scenario exercises batching, caching and faults.
GOLDEN_SCALE = 0.05

#: Deterministic results of ``run_perf(scale=GOLDEN_SCALE)``.  Regenerate
#: with ``python -m repro perf --scale 0.05 --fingerprint`` after any
#: intentional behaviour change.
GOLDEN_RESULTS = {
    "chaos_4_replicas": {
        "events": 3672,
        "fingerprint": "0466757058bcb74566302cb60693bbbe0b1b9c0ac42b58431d8458fdecbeeb11",
        "peak_event_queue": 15,
    },
    "kv_tiers": {
        "events": 81928,
        "fingerprint": "69e278e426f781611af12a42bc0a131f6f5898dc9eaaac49d316d30cc27b0bdd",
        "peak_event_queue": 65,
    },
    "fleet_4_replicas": {
        "events": 6102,
        "fingerprint": "99a44a988cf062e2850b88100238a330e4fc5bcf6db1882fbebc9803b870d196",
        "peak_event_queue": 40,
    },
    "single_goodput": {
        "events": 4168,
        "fingerprint": "c1147d43a9ad0a98eeef8693d9bc5feb57ac15554c615152ba75e42c708bfe4f",
        "peak_event_queue": 10,
    },
    "spec_decoding": {
        "events": 7788,
        "fingerprint": "3e889eebf87da1b5fbdc2bbd9396292bcfa05880a632da8232b156d78c7f1ce3",
        "peak_event_queue": 8,
    },
    "tenancy_wfq_brownout": {
        "events": 2806,
        "fingerprint": "0d3c07560ed0e36b07a281602a663f8c4343045060824068a8e9ec902cf27f22",
        "peak_event_queue": 24,
    },
}


@pytest.fixture(scope="module")
def golden_run() -> PerfReport:
    return run_perf(scale=GOLDEN_SCALE)


class TestGoldenFingerprints:
    def test_results_match_golden(self, golden_run):
        assert golden_run.fingerprints() == GOLDEN_RESULTS

    def test_fingerprints_stable_across_runs(self, golden_run):
        again = run_perf(scale=GOLDEN_SCALE)
        assert again.fingerprint_json() == golden_run.fingerprint_json()

    def test_repeats_agree(self):
        # run_perf itself raises if repeats fingerprint differently.
        report = run_perf(scenarios=["single_goodput"], scale=GOLDEN_SCALE, repeats=2)
        assert report.scenarios["single_goodput"].fingerprint == (
            GOLDEN_RESULTS["single_goodput"]["fingerprint"]
        )


class TestHarnessMechanics:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_perf(scenarios=["nope"], scale=GOLDEN_SCALE)

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            run_perf(scenarios=["single_goodput"], repeats=0)

    def test_scenario_registry_is_complete(self):
        assert set(SCENARIOS) == set(GOLDEN_RESULTS)

    def test_report_json_round_trips(self, golden_run):
        payload = json.loads(golden_run.to_json())
        assert payload["schema"] == 1
        assert payload["scale"] == GOLDEN_SCALE
        assert set(payload["results"]) == set(GOLDEN_RESULTS)
        for timing in payload["timings"].values():
            assert timing["wall_s"] >= 0.0

    def test_compare_results_flags_fingerprint_change(self, golden_run):
        baseline = json.loads(golden_run.to_json())
        baseline["results"]["fleet_4_replicas"]["fingerprint"] = "0" * 64
        problems = golden_run.compare_results(baseline)
        assert len(problems) == 1
        assert "fleet_4_replicas" in problems[0]

    def test_compare_results_flags_missing_scenario(self, golden_run):
        baseline = {"results": {"brand_new_scenario": {"fingerprint": "x"}}}
        problems = golden_run.compare_results(baseline)
        assert problems == ["brand_new_scenario: scenario missing from this run"]

    def test_compare_timings_flags_regression(self):
        report = PerfReport(scale=1.0)
        report.scenarios["s"] = ScenarioTiming(
            name="s", fingerprint="f", events=10, peak_event_queue=5, wall_s=10.0
        )
        baseline = {"timings": {"s": {"wall_s": 1.0}}}
        problems = report.compare_timings(baseline, max_regression=2.0)
        assert len(problems) == 1 and "exceeds" in problems[0]
        assert report.compare_timings(baseline, max_regression=20.0) == []

    def test_compare_timings_ignores_zero_baseline(self):
        report = PerfReport()
        report.scenarios["s"] = ScenarioTiming(
            name="s", fingerprint="f", events=1, peak_event_queue=1, wall_s=5.0
        )
        assert report.compare_timings({"timings": {"s": {"wall_s": 0.0}}}, 2.0) == []

    def test_events_per_sec(self):
        timing = ScenarioTiming(
            name="s", fingerprint="f", events=500, peak_event_queue=1, wall_s=0.5
        )
        assert timing.events_per_sec == 1000.0
        zero = ScenarioTiming(
            name="s", fingerprint="f", events=500, peak_event_queue=1, wall_s=0.0
        )
        assert zero.events_per_sec == 0.0
