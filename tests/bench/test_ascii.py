"""Unit tests for the ASCII chart helpers."""


from repro.bench.ascii import bar_chart, cdf_chart, line_chart


class TestBarChart:
    def test_bars_scale_to_peak(self):
        text = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_empty(self):
        assert bar_chart({}) == "(empty)"

    def test_nan_rendered_as_na(self):
        text = bar_chart({"a": float("nan"), "b": 1.0})
        assert "(n/a)" in text

    def test_zero_values(self):
        text = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in text

    def test_unit_suffix(self):
        assert "ms" in bar_chart({"a": 3.0}, unit="ms")


class TestLineChart:
    def test_contains_markers_and_legend(self):
        text = line_chart([1.0, 2.0, 3.0], {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]})
        assert "*" in text and "o" in text
        assert "up" in text and "down" in text

    def test_empty_inputs(self):
        assert line_chart([], {}) == "(empty)"
        assert line_chart([1.0], {"s": [float("nan")]}) == "(no finite data)"

    def test_constant_series_does_not_crash(self):
        text = line_chart([1.0, 2.0], {"flat": [5.0, 5.0]})
        assert "flat" in text

    def test_axis_labels_show_extremes(self):
        text = line_chart([0.0, 10.0], {"s": [0.0, 100.0]})
        assert "100" in text
        assert "10" in text


class TestCdfChart:
    def test_rows_monotone(self):
        values = [float(i) for i in range(100)]
        text = cdf_chart(values, points=5)
        numbers = [float(line.split()[-1]) for line in text.splitlines()]
        assert numbers == sorted(numbers)
        assert numbers[-1] == 99.0

    def test_empty(self):
        assert cdf_chart([]) == "(empty)"

    def test_single_value(self):
        text = cdf_chart([42.0], points=3)
        assert text.count("42") == 3
