"""Agentic & RAG scenarios study: verdicts and byte-determinism."""

import json

import pytest

from repro.bench.scenarios import (
    CALIBRATION_METRICS,
    CalibrationMetric,
    PausePoint,
    RoutingPoint,
    ScenariosStudy,
    run_scenarios_study,
)

#: Small but representative; the perf golden runs the same study at 0.05.
STUDY_SCALE = 0.05


@pytest.fixture(scope="module")
def study():
    return run_scenarios_study(scale=STUDY_SCALE, seed=0)


class TestStudyRun:
    def test_all_verdicts_hold(self, study):
        assert study.affinity_wins_cache
        assert study.pause_shifts_gap
        assert study.calibration_ok

    def test_payload_is_byte_deterministic(self, study):
        again = run_scenarios_study(scale=STUDY_SCALE, seed=0)
        canon = lambda s: json.dumps(s.as_dict(), sort_keys=True)
        assert canon(again) == canon(study)

    def test_payload_layout(self, study):
        payload = study.as_dict()
        assert {p["policy"] for p in payload["routing"]} == {
            "round-robin", "prefix-affinity",
        }
        assert {p["mode"] for p in payload["pauses"]} == {"instant", "paused"}
        assert {p["metric"] for p in payload["calibration"]} == set(CALIBRATION_METRICS)
        assert payload["replay_finished"] is True
        assert set(payload["verdicts"]) == {
            "affinity_wins_cache", "pause_shifts_gap", "calibration_ok",
        }
        assert payload["extras"]["events_processed"] > 0

    def test_workload_pair_really_differs_only_in_pacing(self, study):
        instant = next(p for p in study.pauses if p.mode == "instant")
        paused = next(p for p in study.pauses if p.mode == "paused")
        assert instant.tool_delay_mean == 0.0
        assert paused.tool_delay_mean > 0.0
        assert instant.gap != paused.gap


class TestVerdictLogic:
    def _study(self, routing=None, pauses=None, calibration=None, finished=True):
        return ScenariosStudy(
            routing=routing
            or [
                RoutingPoint("round-robin", 0.05, 100.0, 1.0, 10),
                RoutingPoint("prefix-affinity", 0.20, 110.0, 0.9, 10),
            ],
            pauses=pauses
            or [
                PausePoint("instant", 0.0, 100.0, 90.0, 1.0, 1.0),
                PausePoint("paused", 4.0, 80.0, 75.0, 1.0, 1.0),
            ],
            calibration=calibration
            or [CalibrationMetric("useful_throughput", 100.0, 101.0)],
            replay_finished=finished,
        )

    def test_affinity_verdict_requires_strict_win(self):
        tied = self._study(
            routing=[
                RoutingPoint("round-robin", 0.10, 100.0, 1.0, 10),
                RoutingPoint("prefix-affinity", 0.10, 100.0, 1.0, 10),
            ]
        )
        assert not tied.affinity_wins_cache

    def test_pause_verdict_requires_material_shift(self):
        unchanged = self._study(
            pauses=[
                PausePoint("instant", 0.0, 100.0, 90.0, 1.0, 1.0),
                PausePoint("paused", 4.0, 100.1, 90.0, 1.0, 1.0),
            ]
        )
        assert not unchanged.pause_shifts_gap

    def test_calibration_fails_on_bad_ratio(self):
        off = self._study(
            calibration=[CalibrationMetric("useful_throughput", 100.0, 10.0)]
        )
        assert not off.calibration_ok

    def test_calibration_fails_on_nan_and_unfinished_replay(self):
        nan = self._study(calibration=[CalibrationMetric("ttft_p50", 0.0, 1.0)])
        assert not nan.calibration_ok
        unfinished = self._study(finished=False)
        assert not unfinished.calibration_ok
