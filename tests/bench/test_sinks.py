"""Streaming sinks: flat memory over million-event streams, exact output.

The scaled perf tiers only work if output cost is O(batch), not O(trace):
a 10x run's trace no longer fits comfortably in memory.  The tracemalloc
test below pins that contract on a 10^6-event stream; the remaining tests
pin that streaming produces byte-for-byte the same files and records the
batch paths do.
"""

import io
import json
import tracemalloc

import pytest

from repro.bench.sinks import CountingSink, JsonlSink, ListSink
from repro.kvcache.radix import Segment
from repro.serving.metrics import MetricsCollector
from repro.serving.slo import SLO
from repro.trace import StreamingTraceWriter, Tracer, write_jsonl
from repro.workloads.request import Request

#: One million events — the scale-tier trace volume the sinks must absorb
#: without accumulating.
STREAM_EVENTS = 1_000_000

#: Peak traced allocation allowed while streaming.  The buffer holds at
#: most ``batch`` serialized lines (~100 bytes each); one million
#: *accumulated* TraceEvents would be well over 100 MB.
PEAK_BUDGET = 32 * 1024 * 1024


class TestJsonlSink:
    def test_flushes_in_batches(self):
        out = io.StringIO()
        sink = JsonlSink(out, batch=3)
        for i in range(7):
            sink.emit({"i": i})
        assert len(out.getvalue().splitlines()) == 6  # two full batches
        sink.close()
        lines = out.getvalue().splitlines()
        assert [json.loads(line)["i"] for line in lines] == list(range(7))
        assert sink.records_emitted == 7

    def test_close_is_idempotent_and_final(self):
        out = io.StringIO()
        sink = JsonlSink(out, batch=10)
        sink.emit({"a": 1})
        sink.close()
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"a": 2})

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError, match="batch"):
            JsonlSink(io.StringIO(), batch=0)

    def test_owns_path_destination(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with JsonlSink(str(path), batch=100) as sink:
            sink.emit({"x": 1})
        assert json.loads(path.read_text()) == {"x": 1}


class TestStreamingTracer:
    def test_streamed_file_matches_batch_export(self, tmp_path):
        def emit_all(tracer):
            tracer.complete("gpu/dev", "kernel", "kernel", 0.0, 1.5e-3, {"sms": 8})
            tracer.instant("sched/q", "enqueue", "sched", 2e-3)
            tracer.counter("kvcache/pool", "used", 3e-3, {"pages": 7.0})

        batch_tracer = Tracer()
        emit_all(batch_tracer)
        batch_file = io.StringIO()
        write_jsonl(batch_tracer, batch_file)

        stream_path = tmp_path / "stream.jsonl"
        with StreamingTraceWriter(str(stream_path), batch=2) as writer:
            stream_tracer = Tracer(sink=writer)
            emit_all(stream_tracer)
        assert stream_path.read_text() == batch_file.getvalue()
        assert stream_tracer.events == []  # nothing accumulated
        assert len(stream_tracer) == 3

    def test_million_event_stream_keeps_flat_memory(self, tmp_path):
        path = tmp_path / "big.jsonl"
        writer = StreamingTraceWriter(str(path), batch=4096)
        tracer = Tracer(sink=writer)
        emit = tracer.instant
        tracemalloc.start()
        for i in range(STREAM_EVENTS):
            emit("gpu/dev", "tick", "kernel", i * 1e-6)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        writer.close()
        assert writer.events_written == STREAM_EVENTS
        assert tracer.events == []
        # Peak is O(batch), not O(trace).
        assert peak < PEAK_BUDGET, f"peak {peak / 1e6:.1f} MB"
        # Spot-check the file without loading it whole.
        with open(path, encoding="utf-8") as fh:
            count = sum(1 for _ in fh)
        assert count == STREAM_EVENTS


def _request(session_id=0):
    seg = Segment(uid=f"req-{session_id}", tokens=16)
    return Request(
        session_id=session_id,
        turn_index=0,
        arrival_time=0.0,
        history=[],
        new_input=seg,
        output_tokens=4,
    )


class TestMetricsSinkTap:
    def test_tap_records_every_gap_in_order(self):
        sink = ListSink()
        metrics = MetricsCollector(SLO(tbt=0.1), sink=sink)
        request = _request()
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 0.5, 16)
        metrics.on_tokens(request, 0.6)
        metrics.on_tokens(request, 0.75, count=2)
        assert sink.records == [
            {"req": 0, "ts": 0.6, "gaps": [0.6 - 0.5]},
            {"req": 0, "ts": 0.75, "gaps": [0.75 - 0.6, 0.0]},
        ]
        # The tap is additive: the record still holds the full gap list.
        gaps = metrics.records[request.request_id].token_gaps
        assert gaps == [0.6 - 0.5, 0.75 - 0.6, 0.0]

    def test_counting_sink_smoke(self):
        sink = CountingSink()
        metrics = MetricsCollector(SLO(tbt=0.1), sink=sink)
        request = _request(1)
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 0.1, 16)
        metrics.on_tokens(request, 0.2)
        assert sink.records_emitted == 1
