"""Tests for the heterogeneous-fleet goodput-per-dollar study."""

import json

from repro.bench.hetero import (
    BUDGET_USD_PER_HOUR,
    FLEET_PLANS,
    REALTIME_TBT_SCALE,
    FleetPlan,
    HeteroPoint,
    HeteroStudy,
    hetero_workload,
    run_hetero_study,
    study_tenancy,
)
from repro.gpu.specs import H100, H200, L40S

#: Small but past the trace floor — still the steady-state regime.
SCALE = 0.1


def make_point(name, skus, hourly, kw, tier_goodput) -> HeteroPoint:
    return HeteroPoint(
        name=name,
        skus=skus,
        hourly_cost=hourly,
        power_kw=kw,
        requests_finished=10,
        tier_goodput=tier_goodput,
        usd_spent=1.0,
        kwh_spent=0.5,
    )


def make_study(mixed_goodput: float, homogeneous_goodput: float) -> HeteroStudy:
    return HeteroStudy(
        points=[
            make_point("h100x2", ("H100",), 8.0, 1.4, {"batch": homogeneous_goodput}),
            make_point("l40sx8", ("L40S",), 8.0, 2.8, {"batch": 10.0}),
            make_point("mixed", ("H200", "L40S"), 8.0, 1.4, {"batch": mixed_goodput}),
        ]
    )


class TestStudyShape:
    def test_plans_cost_exactly_the_budget(self):
        for plan in FLEET_PLANS:
            assert plan.hourly_cost == BUDGET_USD_PER_HOUR

    def test_mixed_plan_pins_tiers_to_skus(self):
        mixed = next(p for p in FLEET_PLANS if p.name == "mixed")
        assert H200 in mixed.skus and L40S in mixed.skus
        assert mixed.tier_pins == {"batch": L40S.name, "interactive": H200.name}
        homogeneous = [p for p in FLEET_PLANS if p.name != "mixed"]
        assert {s for p in homogeneous for s in p.skus} == {H100, L40S}

    def test_plan_power_sums_tdp(self):
        plan = FleetPlan("two-h100", (H100, H100))
        assert plan.power_kw == 2 * H100.tdp_watts / 1000.0

    def test_win_verdicts_require_strict_improvement(self):
        assert make_study(100.0, 50.0).mixed_wins_per_dollar
        assert not make_study(50.0, 50.0).mixed_wins_per_dollar
        assert not make_study(40.0, 50.0).mixed_wins_per_dollar

    def test_equal_budget_detects_mismatch(self):
        study = make_study(100.0, 50.0)
        assert study.equal_budget
        cheap = make_point("cheap", ("L40S",), 1.0, 0.35, {"batch": 1.0})
        assert not HeteroStudy(points=[*study.points, cheap]).equal_budget

    def test_as_dict_is_json_round_trippable(self):
        payload = json.loads(json.dumps(make_study(100.0, 50.0).as_dict(), sort_keys=True))
        assert payload["mixed_wins_per_dollar"] is True
        assert {p["name"] for p in payload["points"]} == {"h100x2", "l40sx8", "mixed"}


class TestWorkload:
    def test_same_seed_same_shapes(self):
        a = hetero_workload(scale=SCALE, seed=3)
        b = hetero_workload(scale=SCALE, seed=3)
        assert [r.arrival_time for r in a.requests] == [r.arrival_time for r in b.requests]
        assert [r.input_tokens for r in a.requests] == [r.input_tokens for r in b.requests]
        assert [r.tier for r in a.requests] == [r.tier for r in b.requests]

    def test_both_tiers_present(self):
        tiers = {r.tier for r in hetero_workload(scale=SCALE, seed=0).requests}
        assert tiers == {"interactive", "batch"}


class TestStudyTenancy:
    def test_realtime_interactive_tighter_than_default(self):
        tenancy = study_tenancy()
        assert tenancy.classes["interactive"].tbt_scale == REALTIME_TBT_SCALE
        assert REALTIME_TBT_SCALE < 1.0
        assert tenancy.classes["batch"].tbt_scale == 4.0


class TestEndToEnd:
    def test_mixed_fleet_wins_at_equal_budget(self):
        """The acceptance run: at equal $/hr the mixed fleet beats the
        best homogeneous fleet on goodput per dollar (and per kWh) —
        only the H200 can serve realtime-TBT tokens, and the L40S pair
        serves batch cheaper than the H100s."""
        study = run_hetero_study(scale=SCALE, seed=0)
        assert study.equal_budget
        assert study.mixed_wins_per_dollar
        assert study.mixed_wins_per_kwh
        for point in study.points:
            assert point.requests_finished == len(hetero_workload(SCALE, 0))
        assert study.point("l40sx8").tier_goodput["interactive"] == 0.0
        assert study.point("mixed").tier_goodput["interactive"] > 0.0

    def test_report_is_byte_stable_across_runs(self):
        blob_a = json.dumps(run_hetero_study(scale=SCALE, seed=0).as_dict(), sort_keys=True)
        blob_b = json.dumps(run_hetero_study(scale=SCALE, seed=0).as_dict(), sort_keys=True)
        assert blob_a == blob_b

    def test_cost_integrals_follow_plan_prices(self):
        study = run_hetero_study(scale=SCALE, seed=0)
        h100, mixed = study.point("h100x2"), study.point("mixed")
        # Same workload, same $/hr: the slower-draining fleet spends more.
        assert h100.usd_spent > 0 and mixed.usd_spent > 0
        # l40sx8 burns 2x the wattage of the other plans per hour.
        l40s = study.point("l40sx8")
        assert l40s.power_kw == 2 * h100.power_kw
