"""Edge-case tests for the experiment runner's stability heuristics."""

import math

from repro.bench.runner import STABILITY_TTFT, RunResult
from repro.serving.metrics import Summary


def make_summary(**overrides) -> Summary:
    base = dict(
        name="x",
        requests_total=100,
        requests_finished=100,
        ttft_avg=1.0,
        ttft_p50=1.0,
        ttft_p99=2.0,
        tbt_avg=0.02,
        tbt_p50=0.02,
        tbt_p99=0.05,
        tpot_avg=0.02,
        tpot_p50=0.02,
        e2e_avg=3.0,
        e2e_p50=3.0,
        token_throughput=1000.0,
        useful_throughput=900.0,
        output_throughput=500.0,
        tbt_attainment=1.0,
        slo_met=True,
    )
    base.update(overrides)
    return Summary(**base)


def make_result(summary: Summary) -> RunResult:
    return RunResult(
        summary=summary, cache_hit_rate=0.5, sm_utilization=0.7, bandwidth_utilization=0.5
    )


class TestStability:
    def test_healthy_run_is_stable_and_meets_slo(self):
        result = make_result(make_summary())
        assert result.stable
        assert result.meets_slo

    def test_unfinished_requests_mark_unstable(self):
        result = make_result(make_summary(requests_finished=90))
        assert not result.stable
        assert not result.meets_slo

    def test_diverging_ttft_marks_unstable(self):
        result = make_result(make_summary(ttft_p99=STABILITY_TTFT * 2))
        assert not result.stable

    def test_nan_ttft_marks_unstable(self):
        result = make_result(make_summary(ttft_p99=math.nan))
        assert not result.stable

    def test_slo_violation_blocks_goodput_even_when_stable(self):
        result = make_result(make_summary(slo_met=False, tbt_p99=0.2))
        assert result.stable
        assert not result.meets_slo

    def test_boundary_ttft_exactly_at_threshold_is_stable(self):
        result = make_result(make_summary(ttft_p99=STABILITY_TTFT))
        assert result.stable
