"""Edge-case tests for the experiment runner's stability heuristics."""

import math

from repro.baselines import ChunkedPrefillServer
from repro.bench.runner import STABILITY_TTFT, RunResult, run_system
from repro.serving.metrics import Summary
from repro.workloads.request import Workload


def make_summary(**overrides) -> Summary:
    base = dict(
        name="x",
        requests_total=100,
        requests_finished=100,
        ttft_avg=1.0,
        ttft_p50=1.0,
        ttft_p99=2.0,
        tbt_avg=0.02,
        tbt_p50=0.02,
        tbt_p99=0.05,
        tpot_avg=0.02,
        tpot_p50=0.02,
        e2e_avg=3.0,
        e2e_p50=3.0,
        token_throughput=1000.0,
        useful_throughput=900.0,
        output_throughput=500.0,
        tbt_attainment=1.0,
        slo_met=True,
    )
    base.update(overrides)
    return Summary(**base)


def make_result(summary: Summary, **overrides) -> RunResult:
    return RunResult(
        summary=summary,
        cache_hit_rate=0.5,
        sm_utilization=0.7,
        bandwidth_utilization=0.5,
        **overrides,
    )


class TestStability:
    def test_healthy_run_is_stable_and_meets_slo(self):
        result = make_result(make_summary())
        assert result.stable
        assert result.meets_slo

    def test_unfinished_requests_mark_unstable(self):
        result = make_result(make_summary(requests_finished=90))
        assert not result.stable
        assert not result.meets_slo

    def test_diverging_ttft_marks_unstable(self):
        result = make_result(make_summary(ttft_p99=STABILITY_TTFT * 2))
        assert not result.stable

    def test_nan_ttft_marks_unstable(self):
        result = make_result(make_summary(ttft_p99=math.nan))
        assert not result.stable

    def test_slo_violation_blocks_goodput_even_when_stable(self):
        result = make_result(make_summary(slo_met=False, tbt_p99=0.2))
        assert result.stable
        assert not result.meets_slo

    def test_boundary_ttft_exactly_at_threshold_is_stable(self):
        result = make_result(make_summary(ttft_p99=STABILITY_TTFT))
        assert result.stable

    def test_empty_workload_counts_as_stable(self):
        # Zero requests means zero unfinished requests and no latency
        # samples; that must read as "stable", not as a failed run.
        summary = make_summary(
            requests_total=0, requests_finished=0, ttft_p99=math.nan
        )
        assert make_result(summary).stable

    def test_custom_stability_threshold_applies(self):
        summary = make_summary(ttft_p99=2.0)
        assert make_result(summary).stable
        assert not make_result(summary, stability_ttft=1.0).stable
        assert make_result(summary, stability_ttft=2.0).stable


class TestEmptyWorkloadRun:
    def test_run_system_handles_empty_workload(self, cfg_8b_single):
        result = run_system(
            lambda sim, cfg: ChunkedPrefillServer(sim, cfg, token_budget=256),
            cfg_8b_single,
            Workload(name="empty", requests=[]),
        )
        assert result.summary.requests_total == 0
        assert result.stable
        assert result.meets_slo  # vacuously: nothing arrived, nothing violated

    def test_run_system_accepts_stability_overrides(self, cfg_8b_single):
        from repro.workloads import sharegpt_workload

        workload = sharegpt_workload(5, rate=4.0, seed=9)
        factory = lambda sim, cfg: ChunkedPrefillServer(sim, cfg, token_budget=256)
        strict = run_system(
            factory, cfg_8b_single, workload, stability_ttft=1e-9, drain_horizon=1800.0
        )
        relaxed = run_system(factory, cfg_8b_single, workload, stability_ttft=1e9)
        assert not strict.stable
        assert relaxed.stable
