"""Tests for the command-line interface."""

import pytest

from repro.cli import MODEL_ALIASES, SYSTEMS, build_parser, main


class TestParser:
    def test_specs_command(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "Llama-70B" in out
        assert "A100-80GB" in out
        assert "muxwise" in out

    def test_table1_command(self, capsys):
        assert main(["table1", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "ShareGPT" in out
        assert "Tool&Agent" in out

    def test_run_command_small(self, capsys):
        code = main([
            "run", "--system", "muxwise", "--workload", "sharegpt",
            "--model", "8b", "--gpus", "1", "--rate", "4.0", "--requests", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TBT p99" in out
        assert "Useful Tok/s" in out

    def test_run_writes_jsonl(self, tmp_path, capsys):
        output = tmp_path / "records.jsonl"
        code = main([
            "run", "--system", "chunked", "--workload", "sharegpt",
            "--model", "8b", "--gpus", "1", "--rate", "4.0", "--requests", "10",
            "--output", str(output),
        ])
        assert code == 0
        assert output.exists()
        assert len(output.read_text().strip().splitlines()) == 10

    def test_compare_command(self, capsys):
        code = main([
            "compare", "--workload", "sharegpt", "--model", "8b", "--gpus", "1",
            "--rate", "3.0", "--requests", "15", "--systems", "muxwise,chunked",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "muxwise" in out and "chunked" in out

    def test_goodput_command(self, capsys):
        code = main([
            "goodput", "--system", "muxwise", "--workload", "sharegpt",
            "--model", "8b", "--gpus", "1", "--requests", "20", "--rates", "2.0,4.0",
        ])
        assert code == 0
        assert "goodput:" in capsys.readouterr().out

    def test_cluster_command(self, capsys):
        code = main([
            "cluster", "--system", "chunked", "--workload", "sharegpt",
            "--model", "8b", "--gpus", "1", "--rate", "4.0", "--requests", "16",
            "--replicas", "2", "--policy", "least-outstanding",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet goodput" in out
        assert "r0" in out and "r1" in out

    def test_cluster_with_autoscaler_and_shed_admission(self, capsys):
        code = main([
            "cluster", "--system", "chunked", "--workload", "sharegpt",
            "--model", "8b", "--gpus", "1", "--rate", "8.0", "--requests", "16",
            "--replicas", "1", "--policy", "round-robin",
            "--admission", "shed", "--max-outstanding", "4",
            "--autoscale", "--min-replicas", "1", "--max-replicas", "2",
        ])
        assert code == 0
        assert "fleet goodput" in capsys.readouterr().out

    def test_cluster_writes_trace(self, tmp_path, capsys):
        trace = tmp_path / "fleet.json"
        code = main([
            "cluster", "--system", "chunked", "--workload", "sharegpt",
            "--model", "8b", "--gpus", "1", "--rate", "4.0", "--requests", "8",
            "--replicas", "2", "--trace", str(trace),
        ])
        assert code == 0
        assert trace.exists()
        assert '"route:' in trace.read_text()

    def test_cluster_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            main(["cluster", "--policy", "teleport", "--model", "8b", "--gpus", "1"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--system", "nope", "--workload", "sharegpt"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--model", "gpt-17", "--workload", "sharegpt"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "nope", "--model", "8b", "--gpus", "1"])

    def test_tenancy_command_small(self, capsys):
        code = main(["tenancy", "--scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "isolated" in out
        assert "wfq+brownout" in out
        assert "interactive TBT attainment" in out

    def test_tenancy_json_output(self, capsys):
        import json as _json

        code = main(["tenancy", "--scale", "0.1", "--json"])
        assert code == 0
        study = _json.loads(capsys.readouterr().out)
        assert set(study["contended"]) == {"fifo", "wfq", "wfq+brownout"}
        assert "degradation_pts" in study
        tiers = {t["tier"] for t in study["contended"]["wfq+brownout"]["tiers"]}
        assert "interactive" in tiers

    def test_all_aliases_resolve(self):
        parser = build_parser()
        assert parser is not None
        assert set(MODEL_ALIASES.values()) <= {
            "Llama-8B", "Llama-70B", "Qwen3-235B-A22B", "CodeLlama-34B",
        }
        assert "muxwise" in SYSTEMS and "hybrid-pd" in SYSTEMS


class TestAgenticRagCli:
    def test_run_agentic_workload(self, capsys):
        code = main([
            "run", "--system", "muxwise", "--workload", "agentic",
            "--model", "8b", "--gpus", "1", "--rate", "2.0", "--requests", "8",
        ])
        assert code == 0
        assert "Useful Tok/s" in capsys.readouterr().out

    def test_run_rag_workload(self, capsys):
        code = main([
            "run", "--system", "chunked", "--workload", "rag",
            "--model", "8b", "--gpus", "1", "--rate", "2.0", "--requests", "10",
        ])
        assert code == 0
        assert "Useful Tok/s" in capsys.readouterr().out

    def test_scenarios_json(self, capsys):
        import json as _json

        code = main(["scenarios", "--scale", "0.05", "--json"])
        assert code == 0
        study = _json.loads(capsys.readouterr().out)
        assert set(study["verdicts"]) == {
            "affinity_wins_cache", "pause_shifts_gap", "calibration_ok",
        }
        assert all(study["verdicts"].values())

    def test_scenarios_human_output(self, capsys):
        code = main(["scenarios", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RAG routing" in out
        assert "prefix-affinity" in out
        assert "calibration_ok: yes" in out


class TestProfileCli:
    def test_capture_show_replay_round_trip(self, tmp_path, capsys):
        path = tmp_path / "prof.json"
        code = main([
            "profile", "capture", "--model", "8b", "--gpus", "1",
            "--requests", "12", "--rate", "4.0", "--output", str(path),
        ])
        assert code == 0
        assert path.exists()
        assert "profile written" in capsys.readouterr().out

        code = main(["profile", "show", "--profile", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase prefill" in out and "phase decode" in out

        code = main([
            "profile", "replay", "--model", "8b", "--gpus", "1",
            "--requests", "12", "--rate", "4.0", "--profile", str(path),
        ])
        assert code == 0
        assert "replaying profile" in capsys.readouterr().out
