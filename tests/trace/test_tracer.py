"""Unit tests for the Tracer core: recording, ordering, disabled fast path."""

import time

from repro.sim import Simulator
from repro.trace import Tracer, bubble_ratio_from_spans, busy_seconds
from repro.trace.tracer import PH_COMPLETE, PH_INSTANT


class TestRecording:
    def test_complete_span_records_interval(self):
        tracer = Tracer()
        tracer.complete("gpu/s", "kern", "kernel", 1.0, 2.5, {"sms": 54})
        (event,) = tracer.events
        assert event.ph == PH_COMPLETE
        assert event.ts == 1.0
        assert event.dur == 1.5
        assert event.args == {"sms": 54}

    def test_instant_has_zero_duration(self):
        tracer = Tracer()
        tracer.instant("sched", "preempt", "sched", 3.0)
        (event,) = tracer.events
        assert event.ph == PH_INSTANT
        assert event.dur == 0.0

    def test_counter_copies_values(self):
        tracer = Tracer()
        values = {"decode": 16.0}
        tracer.counter("sched", "sms", 0.0, values)
        values["decode"] = 99.0
        assert tracer.events[0].args == {"decode": 16.0}

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.complete("t", "x", "c", 2.0, 1.0)
        assert tracer.events[0].dur == 0.0

    def test_sequence_numbers_strictly_increase(self):
        tracer = Tracer()
        for i in range(10):
            tracer.instant("t", "e", "c", float(i))
        seqs = [e.seq for e in tracer.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 10

    def test_tracks_in_first_appearance_order(self):
        tracer = Tracer()
        tracer.instant("b", "e", "c", 0.0)
        tracer.instant("a", "e", "c", 0.0)
        tracer.instant("b", "e", "c", 1.0)
        assert tracer.tracks() == ["b", "a"]

    def test_span_and_instant_filters(self):
        tracer = Tracer()
        tracer.complete("x", "k", "kernel", 0.0, 1.0)
        tracer.complete("y", "k", "launch", 0.0, 1.0)
        tracer.instant("x", "evict", "cache", 0.5)
        assert len(tracer.spans()) == 2
        assert len(tracer.spans(track="x")) == 1
        assert len(tracer.spans(cat="launch")) == 1
        assert len(tracer.instants(name="evict")) == 1


class TestDisabledFastPath:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.complete("t", "x", "c", 0.0, 1.0)
        tracer.instant("t", "x", "c", 0.0)
        tracer.begin("t", "x", "c", 0.0)
        tracer.end("t", "x", "c", 1.0)
        tracer.counter("t", "x", 0.0, {"v": 1.0})
        assert tracer.events == []
        assert len(tracer) == 0
        assert tracer._seq == 0

    def test_disabled_emit_overhead_is_negligible(self):
        """Micro-benchmark guard: a disabled emit must cost no more than a
        couple of microseconds (one attribute test and a return)."""
        tracer = Tracer(enabled=False)
        n = 200_000
        start = time.perf_counter()
        for _ in range(n):
            tracer.instant("t", "x", "c", 0.0)
        elapsed = time.perf_counter() - start
        assert elapsed / n < 2e-6, f"disabled emit cost {elapsed / n * 1e6:.2f} us/event"
        assert tracer.events == []

    def test_simulator_has_no_tracer_by_default(self):
        assert Simulator().tracer is None

    def test_attach_and_detach(self):
        sim = Simulator()
        tracer = Tracer()
        sim.attach_tracer(tracer)
        assert sim.tracer is tracer
        sim.attach_tracer(None)
        assert sim.tracer is None


class TestIntervalMath:
    def test_busy_seconds_merges_overlaps(self):
        tracer = Tracer()
        tracer.complete("t", "a", "c", 0.0, 2.0)
        tracer.complete("t", "b", "c", 1.0, 3.0)
        tracer.complete("t", "c", "c", 5.0, 6.0)
        assert busy_seconds(tracer.spans()) == 4.0

    def test_bubble_ratio_from_spans_basic(self):
        tracer = Tracer()
        tracer.complete("t", "a", "c", 0.0, 1.0)
        tracer.complete("t", "b", "c", 3.0, 4.0)
        assert bubble_ratio_from_spans(tracer, "t", 0.0, 4.0) == 0.5

    def test_bubble_ratio_clips_to_window(self):
        tracer = Tracer()
        tracer.complete("t", "a", "c", 0.0, 10.0)
        assert bubble_ratio_from_spans(tracer, "t", 2.0, 4.0) == 0.0

    def test_bubble_ratio_empty_window(self):
        assert bubble_ratio_from_spans(Tracer(), "t", 1.0, 1.0) == 0.0
        assert bubble_ratio_from_spans(Tracer(), "t", 0.0, 2.0) == 1.0
