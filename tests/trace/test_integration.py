"""End-to-end tracing tests: a traced MuxWise run, exporter schema validity,
determinism, and the span-derived bubble ratio cross-check (§4.4.2)."""

import io
import json

import pytest

from repro.bench import run_system
from repro.core import MuxWiseServer
from repro.gpu import A100, Device, Stream
from repro.sim import Simulator
from repro.trace import (
    Tracer,
    bubble_ratio_from_spans,
    chrome_trace_events,
    phase_summary,
    write_chrome_trace,
    write_jsonl,
)
from repro.workloads import sharegpt_workload


def traced_run(cfg, enabled: bool = True):
    tracer = Tracer(enabled=enabled)
    workload = sharegpt_workload(6, rate=2.0, seed=0)
    result = run_system(lambda sim, c: MuxWiseServer(sim, c), cfg, workload, tracer=tracer)
    return tracer, result


@pytest.fixture(scope="module")
def traced(cfg_8b_single_module):
    return traced_run(cfg_8b_single_module)


@pytest.fixture(scope="module")
def cfg_8b_single_module():
    from repro.models import LLAMA_8B
    from repro.serving import ServingConfig

    return ServingConfig(model=LLAMA_8B, spec=A100, n_gpus=1)


class TestMuxWiseTrace:
    def test_kernel_spans_on_both_partitions(self, traced):
        tracer, _ = traced
        tracks = tracer.tracks()
        decode_track = next(t for t in tracks if t.endswith("decode-gc"))
        prefill_track = next(t for t in tracks if t.endswith("prefill-gc"))
        assert tracer.spans(track=decode_track, cat="kernel")
        assert tracer.spans(track=prefill_track, cat="kernel")

    def test_resize_events_recorded(self, traced):
        tracer, _ = traced
        resizes = [s for s in tracer.spans(cat="greenctx") if s.name == "resize"]
        assert resizes
        for span in resizes:
            assert span.args is not None
            assert span.args["from_sms"] != span.args["to_sms"]

    def test_request_lifecycle_rows(self, traced):
        tracer, result = traced
        req_tracks = [t for t in tracer.tracks() if t.startswith("req/")]
        assert len(req_tracks) == result.summary.requests_total
        for track in req_tracks:
            names = [s.name for s in tracer.spans(track=track)]
            assert "prefill" in names and "decode" in names
            finished = tracer.instants(track=track, name="finished")
            assert finished

    def test_lifecycle_spans_ordered_and_non_overlapping(self, traced):
        """Within one request row the queued -> prefill -> decode spans tile
        the request's lifetime back-to-back, deterministically ordered."""
        tracer, _ = traced
        for track in (t for t in tracer.tracks() if t.startswith("req/")):
            spans = tracer.spans(track=track)
            assert spans == sorted(spans, key=lambda s: (s.ts, s.seq))
            for earlier, later in zip(spans, spans[1:]):
                assert earlier.ts + earlier.dur <= later.ts + 1e-9
            assert spans[0].name == "queued"

    def test_launch_spans_present(self, traced):
        tracer, _ = traced
        launches = tracer.spans(cat="launch")
        names = {s.name for s in launches}
        assert "decode-graph" in names
        assert "prefill-piecewise" in names

    def test_trace_is_deterministic(self, cfg_8b_single_module):
        """Two runs of the same seed produce identical traces (request ids
        are globally monotonic, so tracks compare by appearance order)."""
        first, _ = traced_run(cfg_8b_single_module)
        second, _ = traced_run(cfg_8b_single_module)

        def normalized(tracer):
            order = {track: i for i, track in enumerate(tracer.tracks())}
            return [
                (e.seq, e.ts, e.ph, order[e.track], e.name, e.cat, e.dur)
                for e in tracer.events
            ]

        assert normalized(first) == normalized(second)

    def test_disabled_tracer_records_nothing_end_to_end(self, cfg_8b_single_module):
        tracer, result = traced_run(cfg_8b_single_module, enabled=False)
        assert tracer.events == []
        assert result.summary.requests_finished > 0

    def test_disabled_run_matches_untraced_run(self, cfg_8b_single_module):
        """Attaching a disabled tracer must not perturb the simulation."""
        _, traced_result = traced_run(cfg_8b_single_module, enabled=False)
        workload = sharegpt_workload(6, rate=2.0, seed=0)
        untraced = run_system(
            lambda sim, c: MuxWiseServer(sim, c), cfg_8b_single_module, workload
        )
        assert traced_result.summary.as_dict() == untraced.summary.as_dict()


class TestBubbleCrossCheck:
    def test_stream_bubble_matches_span_derived_ratio(self):
        """The §4.4.2 bubble ratio computed from trace spans must agree with
        the stream's own busy-time accounting."""
        sim = Simulator()
        tracer = Tracer()
        sim.attach_tracer(tracer)
        device = Device(sim, A100)
        stream = Stream(device, 54)

        def work(seconds):
            from repro.gpu import Work

            return Work(flops=device.compute_rate(54) * seconds, bytes=0.0)

        stream.submit(work(0.3))
        sim.schedule(0.5, lambda: stream.resize(27))
        sim.schedule(0.7, lambda: stream.submit(work(0.2)))
        sim.schedule(1.2, lambda: None)  # idle tail extends the window
        sim.run()
        expected = stream.bubble_ratio()
        derived = bubble_ratio_from_spans(tracer, stream.trace_track, 0.0, sim.now)
        assert derived == pytest.approx(expected, abs=1e-9)

    def test_muxwise_run_bubble_cross_check(self, traced):
        tracer, _ = traced
        # Rebuild the window from the trace itself: accounting started at 0.
        spans = tracer.spans(cat="kernel") + tracer.spans(cat="greenctx")
        window_end = max(s.ts + s.dur for s in spans)
        for suffix in ("decode-gc", "prefill-gc"):
            track = next(t for t in tracer.tracks() if t.endswith(suffix))
            derived = bubble_ratio_from_spans(tracer, track, 0.0, window_end)
            assert 0.0 <= derived <= 1.0


class TestExporters:
    def test_chrome_json_schema(self, traced):
        tracer, _ = traced
        buffer = io.StringIO()
        write_chrome_trace(tracer, buffer)
        payload = json.loads(buffer.getvalue())
        events = payload["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert event["ph"] in {"X", "i", "B", "E", "C", "M"}
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert "name" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
                assert event["ts"] >= 0.0
        metadata = [e for e in events if e["ph"] == "M"]
        thread_names = {e["args"]["name"] for e in metadata if e["name"] == "thread_name"}
        assert set(tracer.tracks()) == thread_names

    def test_chrome_rows_group_by_process(self, traced):
        tracer, _ = traced
        events = chrome_trace_events(tracer)
        by_name = {
            e["args"]["name"]: e["pid"] for e in events if e.get("name") == "thread_name"
        }
        gpu_pids = {pid for name, pid in by_name.items() if name.startswith("gpu/")}
        req_pids = {pid for name, pid in by_name.items() if name.startswith("req/")}
        assert len(gpu_pids) == 1
        assert len(req_pids) == 1
        assert gpu_pids != req_pids

    def test_jsonl_round_trip(self, traced):
        tracer, _ = traced
        buffer = io.StringIO()
        write_jsonl(tracer, buffer)
        lines = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert len(lines) == len(tracer.events)
        assert [r["seq"] for r in lines] == [e.seq for e in tracer.events]

    def test_phase_summary_mentions_phases(self, traced):
        tracer, _ = traced
        text = phase_summary(tracer)
        for needle in ("queued", "prefill", "decode", "decode-iter"):
            assert needle in text

    def test_phase_summary_empty_tracer(self):
        assert "no events" in phase_summary(Tracer())
