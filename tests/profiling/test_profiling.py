"""Unit tests for the offline profiling harness."""

import pytest

from repro.core import ContentionGuard
from repro.gpu import A100, Device
from repro.models import CostModel, phase_latency
from repro.profiling import (
    build_guard,
    measure_corun,
    measure_solo,
    profile_contention,
    profile_decode,
    profile_prefill,
)
from repro.sim import Simulator


class TestSoloProfiling:
    def test_measure_solo_matches_analytic(self, cfg_70b):
        sim = Simulator()
        device = Device(sim, cfg_70b.spec, cfg_70b.n_gpus)
        cost_model = CostModel(cfg_70b.model, 8, cfg_70b.spec.nvlink_bandwidth)
        cost = cost_model.decode_iter([1024] * 16)
        measured = measure_solo(sim, device, cost, 48)
        analytic = phase_latency(cost, device, 48)
        assert measured == pytest.approx(analytic, rel=1e-6)

    def test_profile_prefill_covers_configs(self, cfg_70b):
        samples = profile_prefill(cfg_70b, sm_configs=[46, 92], new_grid=(512, 4096), reused_grid=(0, 8192))
        assert {s.sm_count for s in samples} == {46, 92}
        assert all(s.latency > 0 for s in samples)

    def test_profile_prefill_skips_over_context_window(self, cfg_70b):
        samples = profile_prefill(
            cfg_70b, sm_configs=[92], new_grid=(131072,), reused_grid=(131072,)
        )
        assert samples == []  # 256K total exceeds the context window

    def test_profile_decode_latencies_scale_with_batch(self, cfg_70b):
        samples = profile_decode(cfg_70b, sm_configs=[48], batch_grid=(1, 64), context_grid=(1024,))
        small = next(s for s in samples if s.batch_size == 1)
        large = next(s for s in samples if s.batch_size == 64)
        assert large.latency > small.latency


class TestContentionProfiling:
    def test_corun_slowdown_at_least_one(self, cfg_70b):
        sample = measure_corun(cfg_70b, 8192, 8192, 32, 2048, 48)
        assert sample.slowdown >= 1.0

    def test_slowdowns_bounded_like_paper(self, cfg_70b):
        """§3.3.2: max ~20 % on A100 (30 % on H100)."""
        worst = 0.0
        for decode_sms in (32, 64, 96):
            for context in (1024, 32_768):
                sample = measure_corun(cfg_70b, 32_768, 32_768, 32, context, decode_sms)
                worst = max(worst, sample.slowdown)
        assert 1.0 < worst <= 1.35

    def test_profile_contention_excludes_max_corner(self, cfg_70b):
        samples = profile_contention(
            cfg_70b,
            sm_configs=[48],
            token_levels=(2048, 131072),
            batch_sizes=(8,),
        )
        corners = [
            s for s in samples if s.prefill_new == 131072 and s.prefill_reused == 131072
        ]
        assert corners == []
        assert samples  # other cells exist

    def test_build_guard_seeds_cells(self, cfg_70b):
        samples = profile_contention(
            cfg_70b, sm_configs=[48], token_levels=(2048, 8192), batch_sizes=(8,)
        )
        guard = build_guard(samples)
        assert isinstance(guard, ContentionGuard)
        assert guard.cells > 0
        key = guard.key(samples[0].prefill_new, samples[0].prefill_reused, 8,
                        samples[0].decode_tokens, 48)
        assert guard.lookup(key) >= 1.0
