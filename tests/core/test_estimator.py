"""Unit tests for the contention-tolerant estimator."""

import pytest

from repro.core import (
    ContentionGuard,
    ContentionTolerantEstimator,
    SoloRunPredictor,
    batch_bucket,
    calibrated_predictor,
    token_bucket,
)
from repro.core.estimator import DecodeSample
from repro.gpu import Device
from repro.models import CostModel, PrefillItem, phase_latency
from repro.sim import Simulator


class TestBuckets:
    def test_token_bucket_powers_of_four(self):
        assert token_bucket(100) == 2048
        assert token_bucket(2048) == 2048
        assert token_bucket(2049) == 8192
        assert token_bucket(50_000) == 131072
        assert token_bucket(1_000_000) == 131072

    def test_batch_bucket_rounds_up(self):
        assert batch_bucket(1) == 1
        assert batch_bucket(3) == 4
        assert batch_bucket(33) == 40
        assert batch_bucket(999) == 256


class TestSoloRunPredictor:
    def test_unfitted_predictor_raises(self):
        with pytest.raises(RuntimeError):
            SoloRunPredictor().predict_decode(8, 1024.0, 48)

    def test_decode_accuracy_within_paper_bound(self, cfg_70b):
        """Max deviation should be in the ballpark of the paper's 8.84 %."""
        predictor = calibrated_predictor(cfg_70b)
        cost_model = CostModel(cfg_70b.model, 8, cfg_70b.spec.nvlink_bandwidth)
        device = Device(Simulator(), cfg_70b.spec, 8)
        worst = 0.0
        for bs in (2, 6, 24, 96, 192):
            for ctx in (512, 3000, 20_000, 100_000):
                truth = phase_latency(cost_model.decode_iter([ctx] * bs), device, 48)
                pred = predictor.predict_decode(bs, float(bs * ctx), 48)
                worst = max(worst, abs(pred - truth) / truth)
        # The paper reports 8.84 % max deviation; the linear model's error
        # concentrates at the roofline compute/memory kink, so allow 15 %.
        assert worst < 0.15

    def test_prefill_accuracy_within_paper_bound(self, cfg_70b):
        """Max deviation should be in the ballpark of the paper's 8.16 %."""
        predictor = calibrated_predictor(cfg_70b)
        cost_model = CostModel(cfg_70b.model, 8, cfg_70b.spec.nvlink_bandwidth)
        device = Device(Simulator(), cfg_70b.spec, 8)
        worst = 0.0
        for new in (300, 1500, 6000, 20_000):
            for reused in (0, 3000, 60_000):
                items = [PrefillItem(new=new, reused=reused)]
                truth = phase_latency(cost_model.prefill_full(items), device, 60)
                pred = predictor.predict_prefill(items, 60)
                worst = max(worst, abs(pred - truth) / truth)
        assert worst < 0.12

    def test_prefill_prediction_scales_inverse_with_sms(self, cfg_70b):
        predictor = calibrated_predictor(cfg_70b)
        items = [PrefillItem(new=4096, reused=0)]
        fast = predictor.predict_prefill(items, 92)
        slow = predictor.predict_prefill(items, 46)
        assert slow == pytest.approx(2 * fast, rel=0.25)

    def test_decode_per_config_models(self, cfg_70b):
        predictor = calibrated_predictor(cfg_70b)
        starved = predictor.predict_decode(32, 32 * 1024.0, 16)
        ample = predictor.predict_decode(32, 32 * 1024.0, 96)
        assert starved > ample

    def test_fit_on_synthetic_linear_data_is_exact(self):
        predictor = SoloRunPredictor()
        samples = [
            DecodeSample(batch_size=bs, sum_reused=r, sm_count=48, latency=2e-6 * r + 1e-3 * bs + 0.005)
            for bs in (1, 8, 32)
            for r in (1000.0, 50_000.0, 200_000.0)
        ]
        predictor.fit_decode(samples)
        assert predictor.predict_decode(16, 100_000.0, 48) == pytest.approx(
            2e-6 * 100_000 + 1e-3 * 16 + 0.005, rel=1e-6
        )


class TestContentionGuard:
    def test_default_for_unseen_cells(self):
        guard = ContentionGuard(default=1.3)
        key = guard.key(4096, 0, 32, 32 * 1024, 48)
        assert guard.lookup(key) == 1.3

    def test_update_keeps_maximum(self):
        guard = ContentionGuard()
        key = guard.key(4096, 0, 32, 32 * 1024, 48)
        guard.update(key, 1.1)
        guard.update(key, 1.05)
        assert guard.lookup(key) == pytest.approx(1.1)

    def test_update_clamps_below_one(self):
        guard = ContentionGuard()
        key = guard.key(4096, 0, 8, 8192, 48)
        guard.update(key, 0.7)
        assert guard.lookup(key) == 1.0

    def test_cells_count(self):
        guard = ContentionGuard()
        guard.seed(guard.key(2048, 0, 1, 2048, 16), 1.05)
        guard.seed(guard.key(8192, 0, 1, 2048, 16), 1.08)
        assert guard.cells == 2


class TestWorstCase:
    def test_worst_case_inflates_solo_when_multiplexing(self, cfg_70b):
        estimator = ContentionTolerantEstimator(calibrated_predictor(cfg_70b))
        solo = estimator.solo_decode(32, 32 * 1024.0, 48)
        worst = estimator.worst_case_decode(32, 32 * 1024.0, 48, prefill_new=4096)
        assert worst == pytest.approx(solo * estimator.guard.default)

    def test_no_prefill_means_no_inflation(self, cfg_70b):
        estimator = ContentionTolerantEstimator(calibrated_predictor(cfg_70b))
        solo = estimator.solo_decode(32, 32 * 1024.0, 48)
        assert estimator.worst_case_decode(32, 32 * 1024.0, 48) == pytest.approx(solo)

    def test_observe_refines_guard(self, cfg_70b):
        estimator = ContentionTolerantEstimator(calibrated_predictor(cfg_70b))
        solo = estimator.solo_decode(32, 32 * 1024.0, 48)
        slowdown = estimator.observe_decode(
            32, 32 * 1024.0, 48, observed_latency=solo * 1.5, prefill_new=4096, prefill_reused=0
        )
        assert slowdown == pytest.approx(1.5, rel=0.01)
        worst = estimator.worst_case_decode(32, 32 * 1024.0, 48, prefill_new=4096)
        assert worst == pytest.approx(solo * 1.5, rel=0.01)
