"""Tests for the §5 hybrid deployment (MuxWise as the decode instance)."""

import pytest

from repro.baselines import SGLangPDServer
from repro.core import HybridPDServer
from repro.serving import SLO
from repro.sim import Simulator
from repro.workloads import sharegpt_workload, toolagent_workload


def run(cls, cfg, workload, **kwargs):
    sim = Simulator()
    server = cls(sim, cfg, **kwargs)
    server.submit(workload)
    server.run()
    return server


class TestHybridPD:
    def test_completes_and_meets_slo(self, cfg_70b):
        wl = toolagent_workload(40, request_rate=0.8, seed=61)
        server = run(HybridPDServer, cfg_70b, wl)
        summary = server.metrics.summarize()
        assert summary.requests_finished == summary.requests_total
        assert summary.slo_met

    def test_short_requests_served_locally(self, cfg_70b):
        """Short prefills run on the MuxWise side, skipping migration."""
        wl = sharegpt_workload(40, rate=2.0, seed=62)
        server = run(HybridPDServer, cfg_70b, wl)
        # The dedicated prefill instance never saw the short requests.
        assert server.prefill_inst.cache.stats.lookups == 0
        assert server.metrics.summarize().requests_finished == 40

    def test_long_requests_use_dedicated_instance(self, cfg_70b):
        wl = toolagent_workload(30, request_rate=0.6, seed=63)
        server = run(HybridPDServer, cfg_70b, wl)
        assert server.prefill_inst.cache.stats.lookups > 0

    def test_better_ttft_than_static_disaggregation(self, cfg_70b):
        """Replacing the idle decode instance with MuxWise exploits idle
        compute, improving prefill latency under load (§5)."""
        wl = toolagent_workload(50, request_rate=1.2, seed=64)
        hybrid = run(HybridPDServer, cfg_70b, wl).metrics.summarize()
        static = run(SGLangPDServer, cfg_70b, wl).metrics.summarize()
        assert hybrid.ttft_p99 <= static.ttft_p99 * 1.05

    def test_needs_two_gpus(self, cfg_8b_single):
        with pytest.raises(ValueError):
            HybridPDServer(Simulator(), cfg_8b_single)


class TestPerTokenTTFT:
    def test_target_scales_with_length(self):
        slo = SLO(tbt=0.1, ttft=5.0, ttft_per_token=0.01)
        assert slo.ttft_target(100_000) == pytest.approx(1000.0)
        assert slo.ttft_target(1) == SLO.MIN_TTFT_DEADLINE

    def test_flat_target_without_per_token(self):
        slo = SLO(tbt=0.1, ttft=5.0)
        assert slo.ttft_target(1) == slo.ttft_target(100_000) == 5.0

    def test_invalid_per_token_rejected(self):
        with pytest.raises(ValueError):
            SLO(tbt=0.1, ttft_per_token=0.0)
