"""Behavioural tests for the MuxWise server: partitioning, bubbles,
merging, ablations and preemption."""


from repro.core import MuxWiseServer
from repro.gpu import decode_partition_options
from repro.kvcache import new_segment
from repro.sim import Simulator
from repro.workloads import Request, Workload, loogle_workload, openthoughts_workload, sharegpt_workload


def run_server(cfg, workload, **kwargs):
    sim = Simulator()
    server = MuxWiseServer(sim, cfg, **kwargs)
    server.submit(workload)
    server.run()
    return server


def single_request(input_tokens=512, output_tokens=8, arrival=0.0, session=0, turn=0, history=None):
    return Request(
        session_id=session,
        turn_index=turn,
        arrival_time=arrival,
        history=history or [],
        new_input=new_segment(input_tokens),
        output_tokens=output_tokens,
    )


class TestBasicServing:
    def test_single_request_completes(self, cfg_70b):
        server = run_server(cfg_70b, Workload("one", [single_request()]))
        summary = server.metrics.summarize()
        assert summary.requests_finished == 1
        assert summary.ttft_p99 > 0

    def test_all_requests_finish(self, cfg_70b):
        wl = sharegpt_workload(60, rate=3.0, seed=1)
        server = run_server(cfg_70b, wl)
        assert server.metrics.summarize().requests_finished == 60

    def test_meets_tbt_slo_at_moderate_load(self, cfg_70b):
        wl = sharegpt_workload(80, rate=4.0, seed=2)
        server = run_server(cfg_70b, wl)
        summary = server.metrics.summarize()
        assert summary.slo_met, f"P99 TBT {summary.tbt_p99 * 1e3:.1f} ms"

    def test_multi_turn_reuses_cache(self, cfg_70b):
        shared = new_segment(5000)
        first = single_request(session=1, turn=0, history=[shared])
        second = single_request(
            session=1,
            turn=1,
            arrival=0.1,
            history=[shared, first.new_input, first.output_segment],
        )
        server = run_server(cfg_70b, Workload("turns", [first, second]))
        assert server.metrics.summarize().requests_finished == 2
        assert server.instance.cache.stats.tokens_hit > 0

    def test_oversized_request_dropped_not_deadlocked(self, cfg_70b):
        huge = single_request(input_tokens=10_000_000, output_tokens=4)
        ok = single_request(arrival=0.1, session=2)
        server = run_server(cfg_70b, Workload("mix", [huge, ok]))
        assert server.metrics.summarize().requests_finished == 1


class TestPartitioning:
    def test_partition_stays_within_options(self, cfg_70b):
        wl = sharegpt_workload(60, rate=4.0, seed=3)
        server = run_server(cfg_70b, wl)
        options = set(decode_partition_options(cfg_70b.spec))
        for _, decode_sms, _ in server.partition_log:
            assert decode_sms in options

    def test_loogle_gives_prefill_most_sms(self, cfg_70b):
        """Fig. 18: on LooGLE most SMs go to prefill."""
        wl = loogle_workload(12, rate=0.15, seed=4)
        server = run_server(cfg_70b, wl)
        total = cfg_70b.spec.sms
        shares = [p / total for _, _, p in server.partition_log if p < total]
        assert shares and sum(shares) / len(shares) > 0.5

    def test_decode_heavy_workload_allocates_more_decode_sms(self, cfg_8b):
        """Fig. 18: OpenThoughts (decode-heavy) shifts SMs toward decode
        relative to LooGLE (prefill-heavy)."""
        ot = run_server(cfg_8b, openthoughts_workload(15, rate=1.0, seed=5))
        lg = run_server(cfg_8b, loogle_workload(15, rate=0.2, seed=5))

        def mean_decode_share(server):
            entries = [d for _, d, _ in server.partition_log]
            return sum(entries) / max(1, len(entries))

        assert mean_decode_share(ot) >= mean_decode_share(lg)

    def test_prefill_expands_when_decode_idle(self, cfg_70b):
        wl = Workload("solo", [single_request(input_tokens=30_000, output_tokens=2)])
        server = run_server(cfg_70b, wl)
        # With no decode batch, prefill runs on the whole GPU at some point.
        assert any(p == cfg_70b.spec.sms for _, _, p in server.partition_log)


class TestAblations:
    def test_disabling_layerwise_hurts_tbt(self, cfg_70b):
        """Fig. 19: full-phase launches block decode launches (~10 ms)."""
        wl = sharegpt_workload(60, rate=4.0, seed=6)
        with_lw = run_server(cfg_70b, wl, layerwise=True).metrics.summarize()
        without = run_server(cfg_70b, wl, layerwise=False).metrics.summarize()
        assert without.tbt_p99 >= with_lw.tbt_p99

    def test_disabling_query_sync_hurts_tbt_more(self, cfg_70b):
        """Fig. 19: blocking merges stall decode significantly."""
        wl = sharegpt_workload(60, rate=4.0, seed=6)
        baseline = run_server(cfg_70b, wl).metrics.summarize()
        blocked = run_server(cfg_70b, wl, layerwise=False, query_sync=False).metrics.summarize()
        assert blocked.tbt_p99 > baseline.tbt_p99

    def test_bubble_ratio_is_small(self, cfg_70b):
        """§4.4.2: MuxWise's bubble ratio stays in the single digits at load."""
        wl = sharegpt_workload(120, rate=6.0, seed=7)
        sim = Simulator()
        server = MuxWiseServer(sim, cfg_70b)
        server.submit(wl)
        server.run(until=wl.requests[-1].arrival_time)
        assert server.engine.bubble_ratio() < 0.35


class TestPreemption:
    def make_mixed(self):
        long = single_request(input_tokens=60_000, output_tokens=4, arrival=0.0, session=0)
        short = single_request(input_tokens=300, output_tokens=4, arrival=0.05, session=1)
        return long, short

    def test_short_request_preempts_long_prefill(self, cfg_70b):
        long, short = self.make_mixed()
        server = run_server(cfg_70b, Workload("mix", [long, short]), preemption=True)
        ttft_short = server.metrics.records[short.request_id].ttft
        server2 = run_server(
            cfg_70b,
            Workload("mix2", [
                single_request(input_tokens=60_000, output_tokens=4, session=0),
                single_request(input_tokens=300, output_tokens=4, arrival=0.05, session=1),
            ]),
            preemption=False,
        )
        short2 = [r for r in server2.metrics.records.values() if r.request.input_tokens == 300][0]
        assert ttft_short < short2.ttft

    def test_preempted_long_request_still_finishes(self, cfg_70b):
        long, short = self.make_mixed()
        server = run_server(cfg_70b, Workload("mix", [long, short]), preemption=True)
        assert server.metrics.summarize().requests_finished == 2

    def test_no_recursive_preemption(self, cfg_70b):
        """A preemptor may not itself be preempted."""
        requests = [
            single_request(input_tokens=80_000, output_tokens=3, arrival=0.0, session=0),
            single_request(input_tokens=8_000, output_tokens=3, arrival=0.05, session=1),
            single_request(input_tokens=200, output_tokens=3, arrival=0.10, session=2),
        ]
        server = run_server(cfg_70b, Workload("three", requests), preemption=True)
        assert server.metrics.summarize().requests_finished == 3
