"""Unit tests for the multiplex engine: partitions, launches, bubbles."""

import pytest

from repro.core.engine import MultiplexEngine
from repro.gpu.stream import Work
from repro.serving.base import build_instance
from repro.sim import Simulator


@pytest.fixture
def setup(cfg_70b):
    sim = Simulator()
    instance = build_instance(sim, cfg_70b, cfg_70b.n_gpus, "engine-test")
    engine = MultiplexEngine(sim, instance, cfg_70b, decode_sms=48)
    return sim, instance, engine


class TestPartitioning:
    def test_initial_partition_covers_gpu(self, setup):
        _, instance, engine = setup
        assert engine.decode_sms + engine.prefill_sms == instance.device.total_sms

    def test_set_partition_resizes_both_streams(self, setup):
        sim, instance, engine = setup
        engine.set_partition(64)
        sim.run()
        assert engine.decode_sms == 64
        assert engine.prefill_sms == instance.device.total_sms - 64
        assert engine.reconfigurations == 2

    def test_same_partition_is_noop(self, setup):
        sim, _, engine = setup
        engine.set_partition(48)
        assert engine.reconfigurations == 0

    def test_prefill_all_expands_over_whole_gpu(self, setup):
        sim, instance, engine = setup
        engine.set_partition(48, prefill_all=True)
        sim.run()
        assert engine.prefill_sms == instance.device.total_sms

    def test_invalid_partition_rejected(self, setup):
        _, instance, engine = setup
        with pytest.raises(ValueError):
            engine.set_partition(0)
        with pytest.raises(ValueError):
            engine.set_partition(instance.device.total_sms)


class TestLaunching:
    def test_decode_launch_pays_graph_launch_time(self, setup, cfg_70b):
        sim, instance, engine = setup
        done = {}
        work = Work(flops=instance.device.compute_rate(48) * 0.01, bytes=0.0)
        engine.launch_decode(work, lambda t: done.setdefault("t", t))
        sim.run()
        assert done["t"] == pytest.approx(cfg_70b.launch.decode_launch() + 0.01, rel=1e-3)

    def test_layerwise_prefill_launch_is_cheap(self, setup, cfg_70b):
        sim, instance, engine = setup
        done = {}
        sms = engine.prefill_sms
        work = Work(flops=instance.device.compute_rate(sms) * 0.01, bytes=0.0)
        engine.launch_prefill_group(work, layer_count=8, on_done=lambda t: done.setdefault("t", t))
        sim.run()
        expected = cfg_70b.launch.prefill_layers_launch(8) + 0.01
        assert done["t"] == pytest.approx(expected, rel=1e-3)

    def test_non_layerwise_launch_blocks_host(self, cfg_70b):
        """Full-phase launches occupy the host, delaying decode launches —
        the first bubble type of Fig. 9."""
        sim = Simulator()
        instance = build_instance(sim, cfg_70b, cfg_70b.n_gpus, "nb")
        engine = MultiplexEngine(sim, instance, cfg_70b, decode_sms=48, layerwise=False)
        done = {}
        prefill_work = Work(flops=instance.device.compute_rate(60) * 0.05, bytes=0.0)
        engine.launch_prefill_group(
            prefill_work, layer_count=80, on_done=lambda t: None, whole_phase_layers=80
        )
        decode_work = Work(flops=instance.device.compute_rate(48) * 0.001, bytes=0.0)
        engine.launch_decode(decode_work, lambda t: done.setdefault("t", t))
        sim.run()
        full_launch = cfg_70b.launch.full_prefill_launch(80)
        # Decode completion is pushed behind the long prefill launch.
        assert done["t"] >= full_launch

    def test_concurrent_streams_overlap_execution(self, setup):
        sim, instance, engine = setup
        done = {}
        decode_work = Work(flops=instance.device.compute_rate(48) * 0.1, bytes=0.0)
        prefill_work = Work(flops=instance.device.compute_rate(engine.prefill_sms) * 0.1, bytes=0.0)
        engine.launch_decode(decode_work, lambda t: done.setdefault("d", t))
        engine.launch_prefill_group(prefill_work, 10, lambda t: done.setdefault("p", t))
        sim.run()
        # Both finish around 0.1 s (+launches), i.e. they ran concurrently.
        assert done["d"] < 0.12
        assert done["p"] < 0.12


class TestBubbleAccounting:
    def test_bubble_ratio_reflects_idle_streams(self, setup):
        sim, instance, engine = setup
        work = Work(flops=instance.device.compute_rate(48) * 0.1, bytes=0.0)
        engine.launch_decode(work, lambda t: None)
        sim.run(until=0.4)
        # Decode stream busy 0.1/0.4; prefill stream fully idle.
        assert 0.5 < engine.bubble_ratio() <= 1.0

    def test_reset_bubble_accounting(self, setup):
        sim, instance, engine = setup
        work = Work(flops=instance.device.compute_rate(48) * 0.1, bytes=0.0)
        engine.launch_decode(work, lambda t: None)
        sim.run(until=0.2)
        engine.reset_bubble_accounting()
        assert engine.bubble_ratio() == 0.0
