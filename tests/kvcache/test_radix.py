"""Unit tests for the radix-tree prefix cache: sharing, pinning, eviction."""

import pytest

from repro.kvcache import KVCachePool, PoolExhaustedError, RadixCache, Segment, new_segment


def make_cache(capacity_tokens: int = 4096, sharing: bool = True) -> RadixCache:
    pool = KVCachePool(capacity_tokens * 10.0, kv_bytes_per_token=10.0, page_tokens=16)
    return RadixCache(pool, enable_prefix_sharing=sharing)


class TestInsertAndMatch:
    def test_insert_then_match(self):
        cache = make_cache()
        seg = new_segment(100)
        lease = cache.acquire([seg])
        cache.insert(lease, [seg])
        assert cache.match([seg]) == 100

    def test_match_empty_cache(self):
        cache = make_cache()
        assert cache.match([new_segment(10)]) == 0

    def test_prefix_match_is_longest_prefix(self):
        cache = make_cache()
        a, b, c = new_segment(10), new_segment(20), new_segment(30)
        lease = cache.acquire([a, b])
        cache.insert(lease, [a, b])
        cache.release(lease)
        assert cache.match([a]) == 10
        assert cache.match([a, b]) == 30
        assert cache.match([a, b, c]) == 30
        assert cache.match([b]) == 0  # not a prefix

    def test_acquire_pins_and_counts_stats(self):
        cache = make_cache()
        a = new_segment(64)
        lease = cache.acquire([a])
        cache.insert(lease, [a])
        cache.release(lease)
        second = cache.acquire([a])
        assert second.cached_tokens == 64
        assert cache.stats.tokens_hit == 64
        assert cache.stats.tokens_requested == 128  # both acquires counted

    def test_sharing_disabled_never_matches(self):
        cache = make_cache(sharing=False)
        a = new_segment(100)
        lease = cache.acquire([a])
        cache.insert(lease, [a])
        cache.release(lease)
        assert cache.match([a]) == 0
        assert cache.acquire([a]).cached_tokens == 0

    def test_insert_shared_segment_pins_existing_node(self):
        cache = make_cache()
        shared = new_segment(50)
        first = cache.acquire([shared])
        cache.insert(first, [shared])
        second = cache.acquire([])
        cache.insert(second, [shared])
        used_before = cache.pool.used_pages
        # No double allocation for the shared node.
        assert used_before == cache.pool.pages_for(50)


class TestExtend:
    def test_extend_grows_tail(self):
        cache = make_cache()
        out = new_segment(0)
        lease = cache.acquire([])
        cache.insert(lease, [Segment(uid=out.uid, tokens=0)])
        for _ in range(20):
            cache.extend(lease, 1)
        assert cache.match([Segment(uid=out.uid, tokens=0)]) == 20

    def test_extend_allocates_pages_lazily(self):
        cache = make_cache()
        lease = cache.acquire([])
        cache.insert(lease, [Segment(uid=new_segment(0).uid, tokens=0)])
        before = cache.pool.used_pages
        cache.extend(lease, 1)
        assert cache.pool.used_pages == before + 1
        cache.extend(lease, 15)  # fills up the page: no new allocation
        assert cache.pool.used_pages == before + 1

    def test_extend_without_insert_raises(self):
        cache = make_cache()
        lease = cache.acquire([])
        with pytest.raises(ValueError):
            cache.extend(lease, 1)

    def test_extend_after_release_raises(self):
        cache = make_cache()
        seg = new_segment(10)
        lease = cache.acquire([seg])
        cache.insert(lease, [seg])
        cache.release(lease)
        with pytest.raises(ValueError):
            cache.extend(lease, 1)


class TestEviction:
    def test_lru_eviction_frees_space(self):
        cache = make_cache(capacity_tokens=160)  # 10 pages
        cache.touch(1.0)
        old = new_segment(80)
        lease = cache.acquire([old])
        cache.insert(lease, [old])
        cache.release(lease)
        cache.touch(2.0)
        new = new_segment(160)
        lease2 = cache.acquire([new])
        cache.insert(lease2, [new])  # must evict `old`
        assert cache.match([old]) == 0
        assert cache.stats.evictions >= 1

    def test_pinned_entries_survive_eviction_pressure(self):
        cache = make_cache(capacity_tokens=160)
        pinned = new_segment(80)
        lease = cache.acquire([pinned])
        cache.insert(lease, [pinned])  # stays pinned
        big = new_segment(160)
        lease2 = cache.acquire([big])
        with pytest.raises(PoolExhaustedError):
            cache.insert(lease2, [big])
        assert cache.match([pinned]) == 80

    def test_lru_order_evicts_least_recent_first(self):
        cache = make_cache(capacity_tokens=160)
        a, b = new_segment(64), new_segment(64)
        cache.touch(1.0)
        la = cache.acquire([a])
        cache.insert(la, [a])
        cache.release(la)
        cache.touch(2.0)
        lb = cache.acquire([b])
        cache.insert(lb, [b])
        cache.release(lb)
        cache.touch(3.0)
        c = new_segment(64)
        lc = cache.acquire([c])
        cache.insert(lc, [c])
        assert cache.match([a]) == 0  # oldest evicted
        assert cache.match([b]) == 64

    def test_release_without_keep_drops_immediately(self):
        cache = make_cache()
        seg = new_segment(100)
        lease = cache.acquire([seg])
        cache.insert(lease, [seg])
        cache.release(lease, keep_cached=False)
        assert cache.match([seg]) == 0
        assert cache.pool.used_pages == 0

    def test_release_without_keep_preserves_shared_parents(self):
        cache = make_cache()
        shared, tail = new_segment(50), new_segment(50)
        l1 = cache.acquire([shared])
        cache.insert(l1, [shared])
        l2 = cache.acquire([shared])
        cache.insert(l2, [tail])
        cache.release(l2, keep_cached=False)  # drops tail only (shared pinned)
        assert cache.match([shared]) == 50
        assert cache.match([shared, tail]) == 50

    def test_double_release_is_idempotent(self):
        cache = make_cache()
        seg = new_segment(10)
        lease = cache.acquire([seg])
        cache.insert(lease, [seg])
        cache.release(lease)
        cache.release(lease)
        assert cache.pool.used_pages == cache.pool.pages_for(10)

    def test_evictable_pages_excludes_pinned_subtrees(self):
        cache = make_cache()
        parent, child = new_segment(32), new_segment(32)
        lease = cache.acquire([parent])
        cache.insert(lease, [parent, child])
        assert cache.evictable_pages() == 0  # whole path pinned
        cache.release(lease)
        assert cache.evictable_pages() == cache.pool.pages_for(32) * 2


class TestCanFit:
    def test_can_fit_counts_free_plus_evictable(self):
        cache = make_cache(capacity_tokens=160)
        seg = new_segment(80)
        lease = cache.acquire([seg])
        cache.insert(lease, [seg])
        cache.release(lease)
        assert cache.can_fit(160)  # evicting the 80 frees enough

    def test_can_fit_false_when_pinned(self):
        cache = make_cache(capacity_tokens=160)
        seg = new_segment(160)
        lease = cache.acquire([seg])
        cache.insert(lease, [seg])
        assert not cache.can_fit(16)

    def test_cached_tokens_accounting(self):
        cache = make_cache()
        a, b = new_segment(10), new_segment(20)
        lease = cache.acquire([a, b])
        cache.insert(lease, [a, b])
        assert cache.cached_tokens() == 30
