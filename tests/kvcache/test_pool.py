"""Unit tests for the paged KV pool."""

import pytest

from repro.kvcache import KVCachePool, PoolExhaustedError


def make_pool(capacity_tokens: int = 1024, page_tokens: int = 16) -> KVCachePool:
    return KVCachePool(
        capacity_bytes=capacity_tokens * 100.0, kv_bytes_per_token=100.0, page_tokens=page_tokens
    )


class TestCapacity:
    def test_capacity_tokens(self):
        pool = make_pool(1024)
        assert pool.capacity_tokens == 1024

    def test_capacity_rounds_down_to_whole_pages(self):
        pool = KVCachePool(capacity_bytes=1700.0, kv_bytes_per_token=100.0, page_tokens=16)
        assert pool.capacity_pages == 1
        assert pool.capacity_tokens == 16

    def test_zero_capacity_pool(self):
        pool = KVCachePool(capacity_bytes=0.0, kv_bytes_per_token=100.0)
        assert pool.capacity_tokens == 0
        assert not pool.can_allocate(1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KVCachePool(capacity_bytes=-1, kv_bytes_per_token=1)
        with pytest.raises(ValueError):
            KVCachePool(capacity_bytes=1, kv_bytes_per_token=0)
        with pytest.raises(ValueError):
            KVCachePool(capacity_bytes=1, kv_bytes_per_token=1, page_tokens=0)


class TestAllocation:
    def test_allocate_rounds_up_to_pages(self):
        pool = make_pool(1024, page_tokens=16)
        pages = pool.allocate(17)
        assert pages == 2
        assert pool.used_pages == 2

    def test_allocate_zero_tokens(self):
        pool = make_pool()
        assert pool.allocate(0) == 0

    def test_free_tokens_decrease_on_allocation(self):
        pool = make_pool(1024)
        pool.allocate(160)
        assert pool.free_tokens == 1024 - 160

    def test_exhaustion_raises(self):
        pool = make_pool(64)
        pool.allocate(64)
        with pytest.raises(PoolExhaustedError):
            pool.allocate(1)

    def test_release_returns_pages(self):
        pool = make_pool(64)
        pages = pool.allocate(64)
        pool.release_pages(pages)
        assert pool.free_pages == pool.capacity_pages

    def test_release_more_than_allocated_raises(self):
        pool = make_pool()
        with pytest.raises(ValueError):
            pool.release_pages(1)

    def test_can_allocate_predicts_allocate(self):
        pool = make_pool(64, page_tokens=16)
        pool.allocate(48)
        assert pool.can_allocate(16)
        assert not pool.can_allocate(17)

    def test_utilization(self):
        pool = make_pool(100, page_tokens=10)
        assert pool.utilization() == 0.0
        pool.allocate(50)
        assert pool.utilization() == pytest.approx(0.5)
