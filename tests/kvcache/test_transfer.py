"""Unit tests for the cross-replica transfer cost model and link fallback."""

import pytest

from repro.kvcache import (
    NVLINK_LINK,
    RDMA_LINK,
    TCP_LINK,
    TransferConfig,
    TransferEngine,
    TransferLink,
)

KV_BYTES = 1000.0


def make_engine(links=None, **kwargs) -> TransferEngine:
    config = TransferConfig(links=links, **kwargs) if links else TransferConfig(**kwargs)
    return TransferEngine(config, KV_BYTES)


class TestLinkSelection:
    def test_default_selects_rdma_not_nvlink(self):
        """The default fleet is cross-node: NVLink is present but unavailable."""
        engine = make_engine()
        link = engine.select()
        assert link is not None
        assert link.name == RDMA_LINK.name

    def test_fallback_to_tcp_when_rdma_down(self):
        engine = make_engine()
        engine.set_available(RDMA_LINK.name, False)
        assert engine.select().name == TCP_LINK.name

    def test_no_link_available_returns_none(self):
        engine = make_engine()
        engine.set_available(RDMA_LINK.name, False)
        engine.set_available(TCP_LINK.name, False)
        assert engine.select() is None

    def test_nvlink_can_be_enabled(self):
        engine = make_engine()
        engine.set_available(NVLINK_LINK.name, True)
        assert engine.select().name == NVLINK_LINK.name

    def test_unknown_link_raises(self):
        engine = make_engine()
        with pytest.raises(KeyError):
            engine.set_available("infiniband9000", True)


class TestCostModel:
    def test_cost_is_latency_plus_bytes_over_bandwidth(self):
        link = TransferLink("test", 1e9, 1e-3)
        engine = make_engine(links=(link,))
        # 1000 tokens * 1000 B/token = 1 MB over 1 GB/s = 1 ms, plus 1 ms latency.
        assert engine.cost(1000, link) == pytest.approx(2e-3)

    def test_zero_tokens_costs_nothing(self):
        engine = make_engine()
        assert engine.cost(0) == 0.0

    def test_faster_link_is_cheaper(self):
        engine = make_engine()
        tokens = 10_000
        assert engine.cost(tokens, NVLINK_LINK) < engine.cost(tokens, RDMA_LINK)
        assert engine.cost(tokens, RDMA_LINK) < engine.cost(tokens, TCP_LINK)

    def test_cost_without_any_link_raises(self):
        engine = make_engine()
        engine.set_available(RDMA_LINK.name, False)
        engine.set_available(TCP_LINK.name, False)
        with pytest.raises(RuntimeError):
            engine.cost(100)


class TestAccounting:
    def test_record_accumulates_per_link(self):
        engine = make_engine()
        link = engine.select()
        engine.record(link, 500)
        engine.record(link, 250)
        counters = engine.counters()
        assert counters[link.name] == {"transfers": 2, "tokens": 750}
