"""Unit tests for the cross-replica transfer cost model and link fallback."""

import pytest

from repro.kvcache import (
    NVLINK_LINK,
    RDMA_LINK,
    TCP_LINK,
    TransferConfig,
    TransferEngine,
    TransferLink,
)

KV_BYTES = 1000.0


def make_engine(links=None, **kwargs) -> TransferEngine:
    config = TransferConfig(links=links, **kwargs) if links else TransferConfig(**kwargs)
    return TransferEngine(config, KV_BYTES)


class TestLinkSelection:
    def test_default_selects_rdma_not_nvlink(self):
        """The default fleet is cross-node: NVLink is present but unavailable."""
        engine = make_engine()
        link = engine.select()
        assert link is not None
        assert link.name == RDMA_LINK.name

    def test_fallback_to_tcp_when_rdma_down(self):
        engine = make_engine()
        engine.set_available(RDMA_LINK.name, False)
        assert engine.select().name == TCP_LINK.name

    def test_no_link_available_returns_none(self):
        engine = make_engine()
        engine.set_available(RDMA_LINK.name, False)
        engine.set_available(TCP_LINK.name, False)
        assert engine.select() is None

    def test_nvlink_can_be_enabled(self):
        engine = make_engine()
        engine.set_available(NVLINK_LINK.name, True)
        assert engine.select().name == NVLINK_LINK.name

    def test_unknown_link_raises(self):
        engine = make_engine()
        with pytest.raises(KeyError):
            engine.set_available("infiniband9000", True)


class TestCostModel:
    def test_cost_is_latency_plus_bytes_over_bandwidth(self):
        link = TransferLink("test", 1e9, 1e-3)
        engine = make_engine(links=(link,))
        # 1000 tokens * 1000 B/token = 1 MB over 1 GB/s = 1 ms, plus 1 ms latency.
        assert engine.cost(1000, link) == pytest.approx(2e-3)

    def test_zero_tokens_costs_nothing(self):
        engine = make_engine()
        assert engine.cost(0) == 0.0

    def test_faster_link_is_cheaper(self):
        engine = make_engine()
        tokens = 10_000
        assert engine.cost(tokens, NVLINK_LINK) < engine.cost(tokens, RDMA_LINK)
        assert engine.cost(tokens, RDMA_LINK) < engine.cost(tokens, TCP_LINK)

    def test_cost_without_any_link_raises(self):
        engine = make_engine()
        engine.set_available(RDMA_LINK.name, False)
        engine.set_available(TCP_LINK.name, False)
        with pytest.raises(RuntimeError):
            engine.cost(100)


class TestAccounting:
    def test_record_accumulates_per_link(self):
        engine = make_engine()
        link = engine.select()
        engine.record(link, 500)
        engine.record(link, 250)
        counters = engine.counters()
        assert counters[link.name] == {"transfers": 2, "tokens": 750}


class TestCongestion:
    """Regression for PR 6's follow-on: overlapping fetches on one link used
    to each get full bandwidth; FIFO congestion serializes them."""

    LINK = TransferLink("pipe", 1e9, 1e-3)

    def test_off_by_default_and_identical_to_cost(self):
        engine = make_engine(links=(self.LINK,))
        assert engine.config.congestion is False
        # acquire() must be bit-identical to cost() when congestion is off,
        # including when transfers overlap.
        a = engine.acquire(0.0, 1000, self.LINK)
        b = engine.acquire(0.0, 1000, self.LINK)
        assert a == engine.cost(1000, self.LINK)
        assert b == a

    def test_overlapping_transfers_queue_fifo(self):
        engine = make_engine(links=(self.LINK,), congestion=True)
        first = engine.acquire(0.0, 1000, self.LINK)  # 2 ms pipe occupancy
        assert first == pytest.approx(2e-3)
        # Issued 0.5 ms in: waits 1.5 ms for the pipe, then its own 2 ms.
        second = engine.acquire(0.5e-3, 1000, self.LINK)
        assert second == pytest.approx(1.5e-3 + 2e-3)
        # Third arrives after both drained: no queueing delay.
        third = engine.acquire(10.0, 1000, self.LINK)
        assert third == pytest.approx(2e-3)

    def test_queueing_delay_is_arrival_ordered(self):
        engine = make_engine(links=(self.LINK,), congestion=True)
        done = []
        now = 0.0
        for _ in range(3):
            done.append(now + engine.acquire(now, 1000, self.LINK))
        # Same-instant arrivals drain back-to-back: 2, 4, 6 ms.
        assert done == pytest.approx([2e-3, 4e-3, 6e-3])

    def test_counters_report_queueing_only_in_congestion_mode(self):
        plain = make_engine(links=(self.LINK,))
        plain.acquire(0.0, 1000, self.LINK)
        plain.acquire(0.0, 1000, self.LINK)
        assert "queued" not in plain.counters()["pipe"]

        engine = make_engine(links=(self.LINK,), congestion=True)
        engine.acquire(0.0, 1000, self.LINK)
        engine.acquire(0.0, 1000, self.LINK)
        counters = engine.counters()["pipe"]
        assert counters["queued"] == 1
        assert counters["queue_delay_us"] == 2000  # waited one 2 ms transfer

    def test_per_link_pipes_are_independent(self):
        other = TransferLink("other", 1e9, 1e-3)
        engine = make_engine(links=(self.LINK, other), congestion=True)
        engine.acquire(0.0, 1000, self.LINK)
        # A different link is idle: no queueing behind the first pipe.
        assert engine.acquire(0.0, 1000, other) == pytest.approx(2e-3)

    def test_zero_tokens_never_occupy_the_pipe(self):
        engine = make_engine(links=(self.LINK,), congestion=True)
        assert engine.acquire(0.0, 0, self.LINK) == 0.0
        assert engine.acquire(0.0, 1000, self.LINK) == pytest.approx(2e-3)
