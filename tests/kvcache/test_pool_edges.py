"""Edge-case tests for KVCachePool: zero capacity, empty allocations, bounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache import KVCachePool, PoolExhaustedError


class TestZeroCapacity:
    def test_zero_capacity_pool_is_valid_but_full(self):
        pool = KVCachePool(0.0, kv_bytes_per_token=10.0)
        assert pool.capacity_pages == 0
        assert pool.capacity_tokens == 0
        assert pool.free_pages == 0
        assert pool.utilization() == 0.0

    def test_zero_capacity_rejects_any_allocation(self):
        pool = KVCachePool(0.0, kv_bytes_per_token=10.0)
        assert not pool.can_allocate(1)
        with pytest.raises(PoolExhaustedError):
            pool.allocate(1)

    def test_zero_capacity_accepts_empty_allocation(self):
        pool = KVCachePool(0.0, kv_bytes_per_token=10.0)
        assert pool.allocate(0) == 0


class TestEmptyAllocation:
    def test_allocate_zero_reserves_nothing(self):
        pool = KVCachePool(1000.0, kv_bytes_per_token=10.0, page_tokens=16)
        assert pool.allocate(0) == 0
        assert pool.used_pages == 0

    def test_negative_allocation_rejected(self):
        pool = KVCachePool(1000.0, kv_bytes_per_token=10.0)
        with pytest.raises(ValueError):
            pool.allocate(-1)


class TestReleaseAfterExhaustion:
    def test_release_restores_capacity_after_exhaustion(self):
        pool = KVCachePool(160.0, kv_bytes_per_token=1.0, page_tokens=16)
        pages = pool.allocate(pool.capacity_tokens)
        with pytest.raises(PoolExhaustedError):
            pool.allocate(1)
        pool.release_pages(pages)
        assert pool.free_pages == pool.capacity_pages
        assert pool.allocate(1) == 1  # usable again

    def test_release_more_than_allocated_rejected(self):
        pool = KVCachePool(160.0, kv_bytes_per_token=1.0, page_tokens=16)
        pool.allocate(16)
        with pytest.raises(ValueError):
            pool.release_pages(2)
        with pytest.raises(ValueError):
            pool.release_pages(-1)


class TestUtilizationBounds:
    """utilization() tracks a reference counter and never leaves [0, 1]."""

    @given(
        capacity_pages=st.integers(min_value=0, max_value=64),
        ops=st.lists(st.integers(min_value=0, max_value=40 * 16), max_size=30),
    )
    @settings(max_examples=200)
    def test_utilization_matches_reference_counter(self, capacity_pages, ops):
        pool = KVCachePool(
            capacity_pages * 16.0, kv_bytes_per_token=1.0, page_tokens=16
        )
        held: list[int] = []  # reference ledger of outstanding page counts
        for tokens in ops:
            if held and tokens % 3 == 0:  # deterministic mix of release ops
                pool.release_pages(held.pop())
            else:
                try:
                    held.append(pool.allocate(tokens))
                except PoolExhaustedError:
                    assert pool.pages_for(tokens) > pool.free_pages
            assert pool.used_pages == sum(held)
            assert 0.0 <= pool.utilization() <= 1.0
        for pages in held:
            pool.release_pages(pages)
        assert pool.used_pages == 0
        assert pool.utilization() == 0.0
