"""Unit tests for the DRAM/NVMe tier store: demotion, promotion, survival."""

import pytest

from repro.kvcache import (
    DRAM_TIER,
    NVME_TIER,
    KVTierConfig,
    TieredKVStore,
    TierSpec,
    default_tier_config,
)

KV_BYTES = 1024.0


def make_store(dram_tokens: int = 1000, nvme_tokens: int = 4000, **kwargs) -> TieredKVStore:
    config = KVTierConfig(
        tiers=(
            TierSpec("dram", dram_tokens * KV_BYTES, 25e9, 25e9, 100e-6),
            TierSpec("nvme", nvme_tokens * KV_BYTES, 7e9, 3e9, 1.2e-3),
        ),
        **kwargs,
    )
    return TieredKVStore(config, KV_BYTES)


class TestTierSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TierSpec("bad", -1.0, 1e9, 1e9, 0.0)
        with pytest.raises(ValueError):
            TierSpec("bad", 1e9, 0.0, 1e9, 0.0)
        with pytest.raises(ValueError):
            TierSpec("bad", 1e9, 1e9, 1e9, -0.1)

    def test_duplicate_tier_names_rejected(self):
        with pytest.raises(ValueError):
            KVTierConfig(tiers=(DRAM_TIER, DRAM_TIER))

    def test_default_config_orders_dram_before_nvme(self):
        config = default_tier_config()
        assert [t.name for t in config.tiers] == ["dram", "nvme"]
        assert config.tiers[0].capacity_bytes < NVME_TIER.capacity_bytes


class TestDemotion:
    def test_demote_then_plan_fetch_roundtrip(self):
        store = make_store()
        store.demote((1,), 100, now=0.0)
        assert not store.is_empty()
        assert store.resident_tokens() == 100

        class Seg:
            def __init__(self, uid, tokens):
                self.uid, self.tokens = uid, tokens

        plan = store.plan_fetch([Seg(1, 100)], start_depth=0)
        assert plan is not None
        assert plan.tokens == 100
        # Delay covers at least the tier's read latency.
        assert plan.delay >= 100e-6

    def test_oversized_entry_cascades_to_nvme(self):
        store = make_store(dram_tokens=50, nvme_tokens=4000)
        store.demote((1,), 100, now=0.0)  # too big for DRAM
        util = store.tier_utilization()
        assert util["dram"] == 0.0
        assert util["nvme"] > 0.0

    def test_lru_cascade_on_dram_pressure(self):
        store = make_store(dram_tokens=100, nvme_tokens=4000)
        store.demote((1,), 60, now=0.0)
        store.demote((2,), 60, now=1.0)  # pushes (1,) down to NVMe
        assert store.resident_tokens() == 120
        util = store.tier_utilization()
        assert util["dram"] <= 1.0
        assert util["nvme"] > 0.0

    def test_overflow_past_last_tier_is_dropped(self):
        store = make_store(dram_tokens=50, nvme_tokens=50)
        store.demote((1,), 40, now=0.0)
        store.demote((2,), 40, now=1.0)
        store.demote((3,), 40, now=2.0)
        assert store.stats.dropped_tokens > 0
        assert store.resident_tokens() <= 100

    def test_redemote_replaces_existing_entry(self):
        store = make_store()
        store.demote((1,), 100, now=0.0)
        store.demote((1,), 150, now=1.0)
        assert store.resident_tokens() == 150


class TestPromotion:
    class Seg:
        def __init__(self, uid, tokens):
            self.uid, self.tokens = uid, tokens

    def test_plan_fetch_respects_start_depth(self):
        store = make_store()
        store.demote((1,), 50, now=0.0)
        store.demote((1, 2), 70, now=0.0)
        path = [self.Seg(1, 50), self.Seg(2, 70)]
        plan = store.plan_fetch(path, start_depth=1)
        assert plan is not None
        assert plan.tokens == 70  # only the second segment

    def test_plan_fetch_stops_at_first_miss(self):
        store = make_store()
        store.demote((1,), 50, now=0.0)
        store.demote((1, 2, 3), 30, now=0.0)  # (1, 2) missing
        path = [self.Seg(1, 50), self.Seg(2, 20), self.Seg(3, 30)]
        plan = store.plan_fetch(path, start_depth=0)
        assert plan is not None
        assert plan.tokens == 50

    def test_plan_fetch_is_non_destructive_and_take_pops(self):
        store = make_store()
        store.demote((1,), 50, now=0.0)
        path = [self.Seg(1, 50)]
        assert store.plan_fetch(path, 0) is not None
        assert store.plan_fetch(path, 0) is not None  # still there
        assert store.take((1,)) == 50
        assert store.take((1,)) is None  # destructive
        assert store.plan_fetch(path, 0) is None

    def test_min_promote_tokens_gate(self):
        store = make_store(min_promote_tokens=100)
        store.demote((1,), 50, now=0.0)
        assert store.plan_fetch([self.Seg(1, 50)], 0) is None

    def test_note_promoted_counts_restored_after_kill(self):
        store = make_store()
        store.demote((1,), 50, now=0.0)
        store.note_promoted(50)
        assert store.stats.promoted_tokens == 50
        assert store.stats.restored_tokens == 0
        store.mark_killed()
        store.note_promoted(30)
        assert store.stats.restored_tokens == 30

    def test_stats_survive_mark_killed(self):
        """The store is slot-owned: a kill must not wipe its contents."""
        store = make_store()
        store.demote((1,), 80, now=0.0)
        store.mark_killed()
        assert store.resident_tokens() == 80
        assert store.plan_fetch([self.Seg(1, 80)], 0) is not None
