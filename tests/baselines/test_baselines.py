"""Behavioural tests for the four baselines and the §6 variants."""

import pytest

from repro.baselines import (
    ChunkedPrefillServer,
    LoongServeServer,
    NanoFlowServer,
    SGLangPDServer,
    TemporalMuxServer,
    WindServeServer,
)
from repro.kvcache import new_segment
from repro.serving import ServingConfig
from repro.sim import Simulator
from repro.workloads import Request, Workload, sharegpt_workload, toolagent_workload


def run(cls, cfg, workload, **kwargs):
    sim = Simulator()
    server = cls(sim, cfg, **kwargs)
    server.submit(workload)
    server.run()
    return server


ALL_SYSTEMS = [
    (ChunkedPrefillServer, {"token_budget": 256}),
    (NanoFlowServer, {"token_budget": 256}),
    (SGLangPDServer, {}),
    (LoongServeServer, {}),
    (WindServeServer, {}),
    (TemporalMuxServer, {}),
]


class TestAllSystemsComplete:
    @pytest.mark.parametrize("cls,kwargs", ALL_SYSTEMS, ids=lambda v: getattr(v, "name", ""))
    def test_sharegpt_completes(self, cfg_70b, cls, kwargs):
        wl = sharegpt_workload(40, rate=2.0, seed=1)
        server = run(cls, cfg_70b, wl, **kwargs)
        assert server.metrics.summarize().requests_finished == 40

    @pytest.mark.parametrize("cls,kwargs", ALL_SYSTEMS, ids=lambda v: getattr(v, "name", ""))
    def test_multiturn_completes(self, cfg_70b, cls, kwargs):
        wl = toolagent_workload(25, request_rate=0.5, seed=2)
        server = run(cls, cfg_70b, wl, **kwargs)
        summary = server.metrics.summarize()
        assert summary.requests_finished == summary.requests_total


class TestChunkedPrefill:
    def test_token_budget_validation(self, cfg_70b):
        with pytest.raises(ValueError):
            ChunkedPrefillServer(Simulator(), cfg_70b, token_budget=0)

    def test_long_prefill_is_chunked_across_iterations(self, cfg_70b):
        request = Request(
            session_id=0,
            turn_index=0,
            arrival_time=0.0,
            history=[],
            new_input=new_segment(4096),
            output_tokens=4,
        )
        server = run(ChunkedPrefillServer, cfg_70b, Workload("one", [request]), token_budget=512)
        record = server.metrics.records[request.request_id]
        # 4096 tokens at budget 512 -> at least 8 fused iterations before
        # the first token.
        assert record.ttft > 8 * 0.05

    def test_smaller_budget_lowers_tbt_but_raises_ttft(self, cfg_70b):
        """The SLO-vs-utilisation dilemma (Fig. 6a) under real decode load."""
        wl = sharegpt_workload(150, rate=6.0, seed=3)
        small = run(ChunkedPrefillServer, cfg_70b, wl, token_budget=128).metrics.summarize()
        big = run(ChunkedPrefillServer, cfg_70b, wl, token_budget=4096).metrics.summarize()
        assert small.tbt_p99 < big.tbt_p99
        assert small.ttft_p99 > big.ttft_p99

    def test_cache_reuse_across_turns(self, cfg_70b):
        wl = toolagent_workload(25, request_rate=0.5, seed=4)
        server = run(ChunkedPrefillServer, cfg_70b, wl, token_budget=512)
        assert server.instance.cache.stats.hit_rate > 0.1


class TestNanoFlow:
    def test_worse_than_chunked_for_70b(self, cfg_70b):
        """§4.2.1: duplicated weight loads are amplified on large models."""
        wl = sharegpt_workload(40, rate=3.0, seed=5)
        chunked = run(ChunkedPrefillServer, cfg_70b, wl, token_budget=256).metrics.summarize()
        nano = run(NanoFlowServer, cfg_70b, wl, token_budget=256).metrics.summarize()
        assert nano.tbt_p99 > chunked.tbt_p99

    def test_8b_with_large_budget_can_beat_chunked(self, cfg_8b):
        """NanoFlow outperforms chunked only in its comfort zone (ShareGPT,
        8B, ample token budget)."""
        wl = sharegpt_workload(80, rate=12.0, seed=6)
        chunked = run(ChunkedPrefillServer, cfg_8b, wl, token_budget=1024).metrics.summarize()
        nano = run(NanoFlowServer, cfg_8b, wl, token_budget=1024).metrics.summarize()
        assert nano.tpot_avg < chunked.tpot_avg * 1.15


class TestSGLangPD:
    def test_needs_two_gpus(self):
        from repro.gpu import A100
        from repro.models import LLAMA_8B

        cfg = ServingConfig(model=LLAMA_8B, spec=A100, n_gpus=1)
        with pytest.raises(ValueError):
            SGLangPDServer(Simulator(), cfg)

    def test_decode_instance_is_never_multiplexed(self, cfg_70b):
        """TBT stays low under load — the paper's SGLang-PD strength."""
        wl = sharegpt_workload(60, rate=3.0, seed=7)
        server = run(SGLangPDServer, cfg_70b, wl)
        assert server.metrics.summarize().slo_met

    def test_prefill_side_caches_cross_request_prefixes(self, cfg_70b):
        wl = toolagent_workload(25, request_rate=0.5, seed=8)
        server = run(SGLangPDServer, cfg_70b, wl)
        assert server.prefill_inst.cache.stats.tokens_hit > 0

    def test_kv_pools_are_split(self, cfg_70b):
        server = SGLangPDServer(Simulator(), cfg_70b)
        split = (
            server.prefill_inst.cache.pool.capacity_tokens
            + server.decode_inst.cache.pool.capacity_tokens
        )
        from repro.serving.base import build_instance

        full = build_instance(Simulator(), cfg_70b, 8, "agg")
        assert split < full.cache.pool.capacity_tokens


class TestLoongServe:
    def test_no_cross_request_reuse(self, cfg_70b):
        """The key penalty: multi-turn history is always recomputed."""
        wl = toolagent_workload(25, request_rate=0.5, seed=9)
        server = run(LoongServeServer, cfg_70b, wl)
        assert server.instance.cache.stats.tokens_hit == 0

    def test_recompute_inflates_prefilled_tokens(self, cfg_70b):
        wl = toolagent_workload(25, request_rate=0.4, seed=10)
        loong = run(LoongServeServer, cfg_70b, wl)
        chunked = run(ChunkedPrefillServer, cfg_70b, wl, token_budget=512)
        assert loong.metrics._prefilled_tokens > chunked.metrics._prefilled_tokens

    def test_elastic_scale_up_uses_multiple_gpus(self, cfg_70b):
        request = Request(
            session_id=0,
            turn_index=0,
            arrival_time=0.0,
            history=[],
            new_input=new_segment(30_000),
            output_tokens=4,
        )
        sim = Simulator()
        server = LoongServeServer(sim, cfg_70b)
        server.submit(Workload("one", [request]))
        sim.run(max_events=1)  # process the arrival only
        assert server._prefill_jobs and server._prefill_jobs[0].gpus >= 4
        sim.run()


class TestVariants:
    def test_windserve_oversubscribes_compute(self, cfg_8b_single):
        server = WindServeServer(Simulator(), cfg_8b_single)
        assert server.decode_stream.sm_count == cfg_8b_single.spec.sms
        assert server.prefill_stream.sm_count == cfg_8b_single.spec.sms

    def test_temporal_mux_respects_slo_at_light_load(self, cfg_8b_single):
        wl = sharegpt_workload(40, rate=2.0, seed=11)
        server = run(TemporalMuxServer, cfg_8b_single, wl)
        summary = server.metrics.summarize()
        assert summary.requests_finished == 40
