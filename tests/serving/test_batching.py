"""Unit tests for the decode-batch mixin (token accounting, preemption)."""

import pytest

from repro.kvcache import new_segment
from repro.serving import RequestState, build_instance
from repro.serving.batching import DecodeBatchMixin
from repro.sim import Simulator
from repro.workloads import Request


class MiniSystem(DecodeBatchMixin):
    """Concrete mixin host for unit-testing decode accounting."""

    name = "mini"

    def __init__(self, sim, cfg):
        super().__init__(sim, cfg)
        self.instance = build_instance(sim, cfg, cfg.n_gpus, "mini")

    def on_request_ready(self, state):
        pass


@pytest.fixture
def system(cfg_8b_single):
    return MiniSystem(Simulator(), cfg_8b_single)


def admitted_state(system, output_tokens=4, input_tokens=64, session=0):
    request = Request(
        session_id=session,
        turn_index=0,
        arrival_time=0.0,
        history=[],
        new_input=new_segment(input_tokens),
        output_tokens=output_tokens,
    )
    record = system.metrics.on_arrival(request, 0.0)
    state = RequestState(request, record)
    system.plan_prefill(system.instance, state)
    assert system.allocate_context(system.instance, state)
    assert system.extend_output(system.instance, state, 1)
    system.emit_first_token(state)
    return state


class TestDecodeIteration:
    def test_context_lens_reflect_generation(self, system):
        state = admitted_state(system, output_tokens=8)
        assert system.decode_context_lens([state]) == [64 + 1]
        system.sim.now = 0.1
        system.emit_decode_iteration(system.instance, [state])
        assert system.decode_context_lens([state]) == [64 + 2]

    def test_iteration_emits_one_token_each(self, system):
        states = [admitted_state(system, output_tokens=5, session=i) for i in range(3)]
        system.sim.now = 0.1
        finished, preempted = system.emit_decode_iteration(system.instance, states)
        assert finished == [] and preempted == []
        assert all(s.generated == 2 for s in states)

    def test_finished_requests_reported(self, system):
        state = admitted_state(system, output_tokens=2)
        system.sim.now = 0.1
        finished, _ = system.emit_decode_iteration(system.instance, [state])
        assert finished == [state]

    def test_already_finished_requests_skipped(self, system):
        state = admitted_state(system, output_tokens=2)
        state.finished = True
        finished, preempted = system.emit_decode_iteration(system.instance, [state])
        assert finished == [] and preempted == []
        assert state.generated == 1

    def test_pool_exhaustion_preempts(self, cfg_8b_single):
        # Shrink the pool to almost nothing by pre-allocating.
        system = MiniSystem(Simulator(), cfg_8b_single)
        pool = system.instance.cache.pool
        state = admitted_state(system, output_tokens=1000, input_tokens=32)
        hog_pages = pool.free_pages
        pool.allocate(hog_pages * pool.page_tokens)  # externally exhaust
        system.sim.now = 0.1
        finished, preempted = system.emit_decode_iteration(system.instance, [state])
        # The page boundary may not be hit on the first token; run a few.
        for step in range(2, 20):
            if preempted:
                break
            system.sim.now = 0.1 * step
            finished, preempted = system.emit_decode_iteration(system.instance, [state])
        assert preempted == [state]
        assert state.lease is None
        assert state.first_token_emitted
