"""Unit tests for SLOs and the metrics collector."""

import math

import pytest

from repro.kvcache import new_segment
from repro.models import LLAMA_8B, LLAMA_70B, QWEN3_235B
from repro.serving import SLO, MetricsCollector, default_slo, percentile
from repro.workloads import Request


def make_request(output_tokens: int = 5, arrival: float = 0.0) -> Request:
    return Request(
        session_id=0,
        turn_index=0,
        arrival_time=arrival,
        history=[],
        new_input=new_segment(100),
        output_tokens=output_tokens,
    )


class TestSLO:
    def test_default_slo_small_model(self):
        """The paper: 50 ms TBT for Llama-8B."""
        assert default_slo(LLAMA_8B).tbt == pytest.approx(0.050)

    def test_default_slo_large_models(self):
        """...and 100 ms for Llama-70B (and larger)."""
        assert default_slo(LLAMA_70B).tbt == pytest.approx(0.100)
        assert default_slo(QWEN3_235B).tbt == pytest.approx(0.100)

    def test_invalid_targets_rejected(self):
        with pytest.raises(ValueError):
            SLO(tbt=0.0)
        with pytest.raises(ValueError):
            SLO(tbt=0.05, attainment_percentile=0.0)


class TestPercentile:
    def test_empty_returns_nan(self):
        assert math.isnan(percentile([], 99))

    def test_single_value(self):
        assert percentile([3.0], 99) == 3.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_p99_of_uniform(self):
        values = [float(i) for i in range(101)]
        assert percentile(values, 99) == pytest.approx(99.0)

    def test_bounds(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_invalid_pct(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_nan_inputs_are_filtered(self):
        """NaN compares false with everything, so a NaN mid-list used to
        leave sorted() partially ordered and corrupt every rank."""
        values = [math.nan, 3.0, 1.0, math.nan, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == pytest.approx(2.0)
        assert percentile(values, 100) == 3.0

    def test_all_nan_returns_nan(self):
        assert math.isnan(percentile([math.nan, math.nan], 50))

    def test_nan_does_not_shift_p99(self):
        clean = [float(i) for i in range(101)]
        assert percentile([math.nan, *clean], 99) == percentile(clean, 99)


class TestMetricsCollector:
    def make(self) -> MetricsCollector:
        return MetricsCollector(SLO(tbt=0.1), name="test")

    def test_ttft_recorded(self):
        metrics = self.make()
        request = make_request()
        metrics.on_arrival(request, 1.0)
        metrics.on_prefill_done(request, 1.5, new_tokens=100)
        record = metrics.records[request.request_id]
        assert record.ttft == pytest.approx(0.5)
        assert record.tokens_emitted == 1

    def test_token_gaps_recorded(self):
        metrics = self.make()
        request = make_request(output_tokens=3)
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 1.0, 100)
        metrics.on_tokens(request, 1.05)
        metrics.on_tokens(request, 1.15)
        record = metrics.records[request.request_id]
        assert record.token_gaps == pytest.approx([0.05, 0.10])
        assert record.finished

    def test_batched_token_emission_keeps_step_gap(self):
        """A step emitting N tokens stalled the stream for the whole step:
        the first token carries the full gap, the other N-1 arrive with it.

        The old accounting smeared (time - last) / N over N gaps, which hid
        the stall from P99 TBT — a 200 ms verify step emitting 4 tokens
        looked like four comfortable 50 ms gaps.
        """
        metrics = self.make()
        request = make_request(output_tokens=5)
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 1.0, 100)
        metrics.on_tokens(request, 1.2, count=4)
        record = metrics.records[request.request_id]
        assert record.token_gaps == pytest.approx([0.2, 0.0, 0.0, 0.0])
        assert record.tokens_emitted == 5

    def test_multi_token_stall_lands_in_p99_and_attainment(self):
        """Regression: a verify-path step slower than the TBT SLO must show
        up as an SLO violation even though the *average* gap is fine."""
        metrics = self.make()  # SLO tbt = 0.1
        request = make_request(output_tokens=4)
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 1.0, 100)
        # One 0.3 s decode step emits 3 tokens: per-token average 0.1 s
        # would pass the SLO, but the stream actually stalled for 0.3 s.
        metrics.on_tokens(request, 1.3, count=3)
        summary = metrics.summarize()
        assert summary.tbt_p99 == pytest.approx(0.3, rel=0.05)
        assert summary.tbt_attainment == pytest.approx(2 / 3)
        assert not summary.slo_met

    def test_tpot(self):
        metrics = self.make()
        request = make_request(output_tokens=3)
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 1.0, 100)
        metrics.on_tokens(request, 1.1)
        metrics.on_tokens(request, 1.3)
        record = metrics.records[request.request_id]
        assert record.tpot == pytest.approx(0.15)
        assert record.e2e == pytest.approx(1.3)

    def test_double_prefill_rejected(self):
        metrics = self.make()
        request = make_request()
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 1.0, 10)
        with pytest.raises(ValueError):
            metrics.on_prefill_done(request, 2.0, 10)

    def test_summary_slo_attainment(self):
        metrics = self.make()
        for i in range(3):
            request = make_request(output_tokens=2)
            metrics.on_arrival(request, 0.0)
            metrics.on_prefill_done(request, 1.0, 10)
            gap = 0.05 if i < 2 else 0.5  # one violator
            metrics.on_tokens(request, 1.0 + gap)
        summary = metrics.summarize()
        assert summary.requests_finished == 3
        assert summary.tbt_attainment == pytest.approx(2 / 3)
        assert not summary.slo_met  # p99 dominated by the violator

    def test_summary_throughput(self):
        metrics = self.make()
        request = make_request(output_tokens=11)
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 1.0, 100)
        for i in range(10):
            metrics.on_tokens(request, 1.0 + 0.1 * (i + 1))
        summary = metrics.summarize()
        # 100 prefilled + 11 output over 2 seconds.
        assert summary.token_throughput == pytest.approx(111 / 2.0)
        assert summary.output_throughput == pytest.approx(11 / 2.0)

    def test_ttft_per_token(self):
        metrics = self.make()
        request = make_request()
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 2.0, 100)
        record = metrics.records[request.request_id]
        assert record.ttft_per_token == pytest.approx(2.0 / request.input_tokens)

    def test_unfinished_request_not_counted_finished(self):
        metrics = self.make()
        request = make_request(output_tokens=10)
        metrics.on_arrival(request, 0.0)
        metrics.on_prefill_done(request, 1.0, 10)
        summary = metrics.summarize()
        assert summary.requests_total == 1
        assert summary.requests_finished == 0

    def test_single_token_outputs_meet_slo_vacuously(self):
        """Requests emitting exactly one output token produce no TBT gaps;
        the SLO was never violated, so attainment is 1.0 and slo_met True
        (it used to report 0.0 / False)."""
        metrics = self.make()
        for _ in range(3):
            request = make_request(output_tokens=1)
            metrics.on_arrival(request, 0.0)
            metrics.on_prefill_done(request, 0.5, 10)
        summary = metrics.summarize()
        assert summary.requests_finished == 3
        assert summary.tbt_attainment == 1.0
        assert summary.slo_met

    def test_empty_run_meets_slo_vacuously(self):
        summary = self.make().summarize()
        assert summary.tbt_attainment == 1.0
        assert summary.slo_met
