"""Failure-injection tests: pool exhaustion, overload, pathological inputs.

These exercise the recovery paths every serving system shares: admission
back-pressure when the KV pool is full, recompute-preemption mid-decode,
and rejection of requests that can never fit.
"""

import pytest

from repro.baselines import ChunkedPrefillServer, SGLangPDServer
from repro.core import MuxWiseServer
from repro.gpu import A100
from repro.kvcache import new_segment
from repro.models import LLAMA_8B
from repro.serving import ServingConfig
from repro.sim import Simulator
from repro.workloads import Request, Workload


def tiny_pool_config() -> ServingConfig:
    """An 8B deployment with almost all memory reserved: a tiny KV pool."""
    return ServingConfig(
        model=LLAMA_8B,
        spec=A100,
        n_gpus=1,
        activation_reserve_fraction=0.72,
    )


def request(input_tokens, output_tokens, arrival=0.0, session=0):
    return Request(
        session_id=session,
        turn_index=0,
        arrival_time=arrival,
        history=[],
        new_input=new_segment(input_tokens),
        output_tokens=output_tokens,
    )


class TestPoolPressure:
    def test_muxwise_survives_tiny_pool(self):
        cfg = tiny_pool_config()
        sim = Simulator()
        server = MuxWiseServer(sim, cfg)
        pool_tokens = server.instance.cache.pool.capacity_tokens
        assert pool_tokens < 80_000  # genuinely constrained
        requests = [
            request(2000, 400, arrival=0.2 * i, session=i) for i in range(12)
        ]
        server.submit(Workload("pressure", requests))
        server.run()
        summary = server.metrics.summarize()
        # Back-pressure may slow things down but never loses requests.
        assert summary.requests_finished == 12

    def test_chunked_survives_tiny_pool(self):
        cfg = tiny_pool_config()
        sim = Simulator()
        server = ChunkedPrefillServer(sim, cfg, token_budget=512)
        requests = [
            request(2000, 400, arrival=0.2 * i, session=i) for i in range(12)
        ]
        server.submit(Workload("pressure", requests))
        server.run()
        assert server.metrics.summarize().requests_finished == 12

    def test_long_outputs_trigger_recompute_preemption_and_recover(self):
        """Many long-decode requests exhaust the pool mid-decode; the
        recompute-preemption path must converge, not deadlock."""
        cfg = tiny_pool_config()
        sim = Simulator()
        server = MuxWiseServer(sim, cfg)
        requests = [
            request(500, 4000, arrival=0.05 * i, session=i) for i in range(10)
        ]
        server.submit(Workload("long-decode", requests))
        sim.run(max_events=5_000_000)
        summary = server.metrics.summarize()
        assert summary.requests_finished == 10


class TestOversizedRequests:
    @pytest.mark.parametrize("cls,kwargs", [
        (MuxWiseServer, {}),
        (ChunkedPrefillServer, {"token_budget": 256}),
    ], ids=["muxwise", "chunked"])
    def test_oversized_request_dropped_others_survive(self, cls, kwargs):
        cfg = tiny_pool_config()
        sim = Simulator()
        server = cls(sim, cfg, **kwargs)
        huge = request(10_000_000, 4, session=0)
        normal = [request(500, 50, arrival=0.1 * (i + 1), session=i + 1) for i in range(4)]
        server.submit(Workload("mixed", [huge, *normal]))
        server.run()
        summary = server.metrics.summarize()
        assert summary.requests_finished == 4  # the oversized one is dropped

    def test_oversized_turn_does_not_wedge_its_session(self):
        cfg = tiny_pool_config()
        sim = Simulator()
        server = MuxWiseServer(sim, cfg)
        first = request(10_000_000, 4, session=7)
        follow_up = Request(
            session_id=7,
            turn_index=1,
            arrival_time=0.5,
            history=[first.new_input, first.output_segment],
            new_input=new_segment(10_000_000),
            output_tokens=4,
        )
        server.submit(Workload("wedge", [first, follow_up]))
        server.run()
        # Both get dropped (never fit), but the session gate advanced, so
        # the simulator drained rather than deadlocking.
        assert server.sim.pending_events == 0


class TestDisaggregatedBackPressure:
    def test_decode_pool_stall_backs_up_prefill_then_recovers(self):
        cfg = ServingConfig(
            model=LLAMA_8B, spec=A100, n_gpus=2, activation_reserve_fraction=0.7
        )
        sim = Simulator()
        server = SGLangPDServer(sim, cfg)
        requests = [
            request(3000, 600, arrival=0.1 * i, session=i) for i in range(10)
        ]
        server.submit(Workload("stall", requests))
        sim.run(max_events=5_000_000)
        assert server.metrics.summarize().requests_finished == 10
