"""Unit tests for serving config, instance building and base machinery."""

import pytest

from repro.gpu import A100, H200, OutOfMemoryError
from repro.kvcache import new_segment
from repro.models import LLAMA_70B, QWEN3_235B
from repro.serving import RequestState, ServingConfig, ServingSystem, build_instance
from repro.sim import Simulator
from repro.workloads import Request


class RecordingSystem(ServingSystem):
    """Minimal concrete system that records admissions."""

    name = "recorder"

    def __init__(self, sim, cfg):
        super().__init__(sim, cfg)
        self.admitted: list[RequestState] = []

    def on_request_ready(self, state):
        self.admitted.append(state)


def make_request(session=0, turn=0, arrival=0.0, history=None, output=4):
    return Request(
        session_id=session,
        turn_index=turn,
        arrival_time=arrival,
        history=history or [],
        new_input=new_segment(64),
        output_tokens=output,
    )


class TestServingConfig:
    def test_default_slo_from_model(self, cfg_70b):
        assert cfg_70b.slo.tbt == pytest.approx(0.1)

    def test_kv_pool_excludes_weights_and_reserve(self, cfg_70b):
        pool = cfg_70b.kv_pool_bytes(8)
        total = cfg_70b.spec.mem_bytes * 8
        assert pool < total - LLAMA_70B.weight_bytes
        assert pool > 0

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            ServingConfig(model=LLAMA_70B, spec=A100, n_gpus=0)


class TestBuildInstance:
    def test_instance_pool_sized_from_free_memory(self, sim, cfg_70b):
        inst = build_instance(sim, cfg_70b, 8, "t")
        # ~480 GB free of 640 GB for 70B weights + reserve -> >1M tokens.
        assert inst.cache.pool.capacity_tokens > 1_000_000

    def test_disaggregated_pool_is_smaller(self, sim, cfg_70b):
        """Each disaggregated instance replicates weights: the aggregate KV
        pool shrinks (the paper's Fig. 5 capacity halving)."""
        full = build_instance(sim, cfg_70b, 8, "full")
        half_a = build_instance(Simulator(), cfg_70b, 4, "a")
        combined = 2 * half_a.cache.pool.capacity_tokens
        assert combined < full.cache.pool.capacity_tokens

    def test_qwen_disaggregation_collapses_kv_pool(self, sim):
        """The paper: disaggregated serving is infeasible for Qwen-235B even
        with 141 GB per H200 — replicating 470 GB of weights per instance
        leaves almost no KV pool."""
        cfg = ServingConfig(model=QWEN3_235B, spec=H200, n_gpus=8)
        full = build_instance(Simulator(), cfg, 8, "qwen-full")
        half = build_instance(sim, cfg, 4, "qwen-half")
        assert 2 * half.cache.pool.capacity_tokens < 0.4 * full.cache.pool.capacity_tokens

    def test_qwen_on_a100_half_server_raises_oom(self, sim):
        """On 80 GB GPUs the Qwen weights do not even fit a 4-GPU instance."""
        cfg = ServingConfig(model=QWEN3_235B, spec=A100, n_gpus=8)
        with pytest.raises(OutOfMemoryError):
            build_instance(sim, cfg, 4, "qwen-a100-half")


class TestSessionGating:
    def test_single_turn_admitted_immediately(self, sim, cfg_8b_single):
        system = RecordingSystem(sim, cfg_8b_single)
        system._arrive(make_request())
        assert len(system.admitted) == 1

    def test_second_turn_deferred_until_first_finishes(self, sim, cfg_8b_single):
        system = RecordingSystem(sim, cfg_8b_single)
        first = make_request(session=1, turn=0)
        second = make_request(session=1, turn=1, arrival=0.5)
        system._arrive(first)
        system._arrive(second)
        assert len(system.admitted) == 1
        system._complete_turn(system.admitted[0])
        assert len(system.admitted) == 2
        assert system.admitted[1].request is second

    def test_independent_sessions_not_gated(self, sim, cfg_8b_single):
        system = RecordingSystem(sim, cfg_8b_single)
        system._arrive(make_request(session=1))
        system._arrive(make_request(session=2))
        assert len(system.admitted) == 2


class TestKVHelpers:
    def make_system(self, sim, cfg):
        system = RecordingSystem(sim, cfg)
        system.instance = build_instance(sim, cfg, cfg.n_gpus, "helper")
        return system

    def test_plan_prefill_counts_reuse(self, sim, cfg_8b_single):
        system = self.make_system(sim, cfg_8b_single)
        inst = system.instance
        shared = new_segment(500)
        system._arrive(make_request(session=10, history=[shared]))
        state1 = system.admitted[-1]
        system.plan_prefill(inst, state1)
        assert state1.reused_tokens == 0
        assert system.allocate_context(inst, state1)
        system.release_request(inst, state1)

        system._arrive(make_request(session=11, history=[shared]))
        state2 = system.admitted[-1]
        system.plan_prefill(inst, state2)
        assert state2.reused_tokens == 500  # hit on the shared prefix

    def test_extend_and_finish(self, sim, cfg_8b_single):
        system = self.make_system(sim, cfg_8b_single)
        inst = system.instance
        system._arrive(make_request(session=20, output=3))
        state = system.admitted[-1]
        system.plan_prefill(inst, state)
        assert system.allocate_context(inst, state)
        assert system.extend_output(inst, state, 1)
        system.emit_first_token(state)
        assert state.generated == 1
        system.emit_tokens(state, 2)
        assert state.generated == 3
        system.finish_request(inst, state)
        assert state.finished

    def test_can_ever_fit_rejects_oversized(self, sim, cfg_8b_single):
        system = self.make_system(sim, cfg_8b_single)
        huge = Request(
            session_id=30,
            turn_index=0,
            arrival_time=0.0,
            history=[new_segment(10_000_000)],
            new_input=new_segment(64),
            output_tokens=2,
        )
        system._arrive(huge)
        state = system.admitted[-1]
        assert not system.can_ever_fit(system.instance, state)

    def test_produce_prefill_token_idempotent_semantics(self, sim, cfg_8b_single):
        system = self.make_system(sim, cfg_8b_single)
        system._arrive(make_request(session=40, output=5))
        state = system.admitted[-1]
        system.plan_prefill(system.instance, state)
        assert system.allocate_context(system.instance, state)
        system.produce_prefill_token(state)   # first token
        assert state.generated == 1
        system.produce_prefill_token(state)   # resumed-prefill token
        assert state.generated == 2
