"""Replay contract: same (plan, seed, workload) → byte-identical report."""

import math

from repro.bench import run_chaos
from repro.cluster import FleetConfig, HealthConfig
from repro.faults import FaultKind, FaultPlan, default_chaos_plan
from repro.sim import ShardedSimulator, fastpath
from repro.workloads import sharegpt_workload

from tests.faults.conftest import chunked_factory


def one_run(cfg, plan, sim_factory=None):
    workload = sharegpt_workload(24, rate=12.0, seed=31)
    return run_chaos(
        chunked_factory,
        cfg,
        workload,
        fleet=FleetConfig(replicas=3, health=HealthConfig()),
        plan=plan,
        sim_factory=sim_factory,
    )


def random_plan():
    return FaultPlan.random(
        seed=13,
        horizon=2.0,
        counts={
            FaultKind.REPLICA_KILL: 1,
            FaultKind.NETWORK_DROP: 1,
            FaultKind.PREEMPTION_STORM: 1,
        },
    )


class TestDeterminism:
    def test_scripted_plan_replays_byte_identically(self, cfg_8b_single):
        plan = default_chaos_plan(2.0)
        first = one_run(cfg_8b_single, plan)
        second = one_run(cfg_8b_single, plan)
        assert first.to_json() == second.to_json()
        assert first.drained and first.conserved()

    def test_probabilistic_plan_replays_byte_identically(self, cfg_8b_single):
        plan = random_plan()
        first = one_run(cfg_8b_single, plan)
        second = one_run(cfg_8b_single, plan)
        assert first.to_json() == second.to_json()

    def test_report_json_is_strict(self, cfg_8b_single):
        import json

        result = one_run(cfg_8b_single, default_chaos_plan(2.0))
        # Parses under strict JSON (no NaN/Infinity literals allowed).
        payload = json.loads(result.to_json(), parse_constant=lambda _: 1 / 0)
        assert payload["drained"] is True
        assert "request_id" not in result.to_json()


class TestShardedMergeDeterminism:
    """The sharded queue's merge is invariant under everything it may vary.

    Rollback-free optimism means: permuting shard registration order,
    shrinking or widening the lookahead window, or swapping the sharded
    simulator for the flat one must not change a single byte of a chaos
    report — faults and all.
    """

    def test_sharded_matches_flat_under_chaos(self, cfg_8b_single):
        plan = random_plan()
        with fastpath.enabled():
            flat = one_run(cfg_8b_single, plan)
            sharded = one_run(cfg_8b_single, plan, sim_factory=ShardedSimulator)
        assert sharded.to_json() == flat.to_json()
        assert sharded.drained and sharded.conserved()

    def test_lookahead_window_is_invariant(self, cfg_8b_single):
        plan = random_plan()
        with fastpath.enabled():
            reports = [
                one_run(
                    cfg_8b_single,
                    plan,
                    sim_factory=lambda la=la: ShardedSimulator(lookahead=la),
                ).to_json()
                for la in (0.0, 1e-3, 0.05, math.inf)
            ]
        assert len(set(reports)) == 1

    def test_shard_registration_order_is_invariant(self):
        """Permuted shard execution order yields the same merged pop order."""

        def drive(order):
            sim = ShardedSimulator()
            for key in order:
                sim._ensure_shard(key)
            fired = []
            # Interleave main-heap and shard events, including exact time
            # ties across shards (broken by priority then seq — seq is
            # assigned by schedule order, which is identical across
            # permutations because we schedule in one fixed order).
            for i, (delay, shard) in enumerate(
                [
                    (0.3, "a"),
                    (0.3, "b"),
                    (0.1, None),
                    (0.2, "c"),
                    (0.2, None),
                    (0.05, "b"),
                    (0.4, "a"),
                ]
            ):
                sim.schedule(delay, lambda i=i: fired.append((i, sim.now)), shard=shard)
            sim.run()
            return fired

        reference = drive(["a", "b", "c"])
        assert [i for i, _ in reference] == [5, 2, 3, 4, 0, 1, 6]
        for order in (["c", "b", "a"], ["b", "a", "c"], ["c", "a", "b"]):
            assert drive(order) == reference
