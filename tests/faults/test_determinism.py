"""Replay contract: same (plan, seed, workload) → byte-identical report."""

from repro.bench import run_chaos
from repro.cluster import FleetConfig, HealthConfig
from repro.faults import FaultKind, FaultPlan, default_chaos_plan
from repro.workloads import sharegpt_workload

from tests.faults.conftest import chunked_factory


def one_run(cfg, plan):
    workload = sharegpt_workload(24, rate=12.0, seed=31)
    return run_chaos(
        chunked_factory,
        cfg,
        workload,
        fleet=FleetConfig(replicas=3, health=HealthConfig()),
        plan=plan,
    )


class TestDeterminism:
    def test_scripted_plan_replays_byte_identically(self, cfg_8b_single):
        plan = default_chaos_plan(2.0)
        first = one_run(cfg_8b_single, plan)
        second = one_run(cfg_8b_single, plan)
        assert first.to_json() == second.to_json()
        assert first.drained and first.conserved()

    def test_probabilistic_plan_replays_byte_identically(self, cfg_8b_single):
        plan = FaultPlan.random(
            seed=13,
            horizon=2.0,
            counts={
                FaultKind.REPLICA_KILL: 1,
                FaultKind.NETWORK_DROP: 1,
                FaultKind.PREEMPTION_STORM: 1,
            },
        )
        first = one_run(cfg_8b_single, plan)
        second = one_run(cfg_8b_single, plan)
        assert first.to_json() == second.to_json()

    def test_report_json_is_strict(self, cfg_8b_single):
        import json

        result = one_run(cfg_8b_single, default_chaos_plan(2.0))
        # Parses under strict JSON (no NaN/Infinity literals allowed).
        payload = json.loads(result.to_json(), parse_constant=lambda _: 1 / 0)
        assert payload["drained"] is True
        assert "request_id" not in result.to_json()
