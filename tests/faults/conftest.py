"""Shared helpers for the fault-injection suite."""

from __future__ import annotations

import pytest

from repro.baselines import ChunkedPrefillServer
from repro.cluster import Fleet, FleetConfig, HealthConfig
from repro.faults import FaultInjector, FaultPlan
from repro.sim import Simulator


def chunked_factory(sim, cfg):
    return ChunkedPrefillServer(sim, cfg, token_budget=256)


@pytest.fixture
def chaos_fleet(cfg_8b_single):
    """Builder: (plan, fleet_cfg?) -> (sim, fleet, injector), armed."""

    def build(plan: FaultPlan, fleet_cfg: FleetConfig | None = None):
        sim = Simulator()
        fleet_cfg = fleet_cfg or FleetConfig(replicas=2, health=HealthConfig())
        fleet = Fleet(sim, chunked_factory, cfg_8b_single, fleet_cfg)
        injector = FaultInjector(sim, fleet, plan)
        injector.arm()
        return sim, fleet, injector

    return build
