"""Regression: a kill invalidates the autoscaler's warm-cache signal.

The bug: ``Replica.kv_warm`` is set when a replica finishes work and the
autoscaler's ``scale_up`` prefers reactivating warm draining replicas.  A
replica killed while parked (or killed and restarted) holds a *cold* fresh
cache, but nothing cleared the flag — so reactivation ranked a gutted
replica ahead of a genuinely warm peer and "warm reactivation" recomputed
every prefix.  ``fail_replica`` must clear ``kv_warm`` atomically with the
cache-destroying scope cancellation.
"""

from repro.cluster import FleetConfig, HealthConfig
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.workloads import sharegpt_workload


def kill_plan(at: float, target: str = "r0", restart_after: float = 0.5) -> FaultPlan:
    return FaultPlan(
        specs=(
            FaultSpec(
                at=at, kind=FaultKind.REPLICA_KILL, target=target, restart_after=restart_after
            ),
        )
    )


class TestWarmFlagInvalidation:
    def test_completions_mark_replica_warm(self, chaos_fleet):
        sim, fleet, _ = chaos_fleet(FaultPlan(), FleetConfig(replicas=2))
        workload = sharegpt_workload(8, rate=8.0, seed=7)
        fleet.submit(workload)
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        assert fleet.summarize().requests_finished == len(workload)
        assert any(r.kv_warm for r in fleet.replicas)

    def test_kill_clears_warm_flag(self, chaos_fleet):
        """The regression: pre-fix, kv_warm survived the kill even though
        the generation's whole radix cache died with its scope."""
        sim, fleet, _ = chaos_fleet(
            kill_plan(at=60.0), FleetConfig(replicas=2, health=HealthConfig())
        )
        workload = sharegpt_workload(12, rate=4.0, seed=7)
        fleet.submit(workload)
        warm_at_kill: list[bool] = []
        sim.schedule_at(59.9, lambda: warm_at_kill.append(fleet.replicas[0].kv_warm))
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        # The kill hit a replica that had genuinely earned its warm flag.
        assert warm_at_kill == [True]
        replica = fleet.replicas[0]
        # Restarted (fresh cold generation) and nothing completed since late
        # traffic all matched the survivor's cache: the flag must be off.
        assert not replica.failed
        assert replica.generation == 1
        assert not replica.kv_warm

    def test_scale_up_prefers_genuinely_warm_replica(self, chaos_fleet):
        """Reactivation order: a kill-invalidated replica ranks behind a
        warm peer even though both are draining candidates."""
        sim, fleet, _ = chaos_fleet(
            kill_plan(at=60.0), FleetConfig(replicas=3, health=HealthConfig())
        )
        workload = sharegpt_workload(18, rate=6.0, seed=7)
        fleet.submit(workload)
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        r0, r1, r2 = fleet.replicas
        assert not r0.kv_warm and r1.kv_warm and r2.kv_warm
        # Park everything, then ask for capacity back: the warm survivors
        # must be reactivated before the cold restarted slot.
        for replica in fleet.replicas:
            replica.draining = True
        first = fleet.scale_up(max_replicas=3)
        second = fleet.scale_up(max_replicas=3)
        third = fleet.scale_up(max_replicas=3)
        assert {first.name, second.name} == {"r1", "r2"}
        assert third.name == "r0"
