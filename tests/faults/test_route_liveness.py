"""Regression: routing policies must not pick an unresponsive replica.

The window: a hang (stalled device) leaves ``Replica.failed`` False until
the health watchdog accumulates enough missed probes — but the replica's
radix cache still scores highest for the sessions it was serving, so
prefix-affinity kept routing exactly the requests that most needed to go
elsewhere into the wedge.  The fix is a route-time liveness check: scoring
policies only consider *responsive* replicas (not failed, no stalled
device) — the same observable the watchdog probes, so the two can never
disagree.
"""

from repro.cluster import Fleet, FleetConfig, HealthConfig
from repro.serving.base import iter_instances
from repro.sim import Simulator
from repro.workloads import conversation_workload

from tests.faults.conftest import chunked_factory

STALL_AT = 60.0


def spy_on_choices(sim, fleet):
    """Record every (time, replica) the routing policy picks."""
    chosen: list[tuple[float, str]] = []
    orig = fleet.router.policy.choose

    def choose(replicas, request):
        replica = orig(replicas, request)
        chosen.append((sim.now, replica.name))
        return replica

    fleet.router.policy.choose = choose
    return chosen


class TestStallWindow:
    def test_no_dispatch_to_stalled_replica_before_detection(self, cfg_8b_single):
        """Kill the watchdog's teeth (huge misses_to_fail) so the stall is
        never *declared* a failure: the whole trace runs inside the
        detection window, and only the route-time check protects it."""
        sim = Simulator()
        fleet_cfg = FleetConfig(
            replicas=2,
            policy="prefix-affinity",
            health=HealthConfig(misses_to_fail=1_000_000, restart_after=None),
        )
        fleet = Fleet(sim, chunked_factory, cfg_8b_single, fleet_cfg)
        chosen = spy_on_choices(sim, fleet)
        workload = conversation_workload(24, request_rate=3.0, seed=5)
        fleet.submit(workload)

        def stall_r0():
            for inst in iter_instances(fleet.replicas[0].system):
                inst.device.stall(100_000.0)

        sim.schedule_at(STALL_AT, stall_r0)
        sim.run(until=workload.requests[-1].arrival_time + 120.0)

        before = [name for t, name in chosen if t < STALL_AT]
        after = [name for t, name in chosen if t >= STALL_AT]
        # Validity: the replica was earning affinity before the stall and
        # traffic kept arriving during the window.
        assert "r0" in before
        assert after
        # The regression: every post-stall decision avoids the wedged
        # replica even though it is not (yet) marked failed.
        assert all(name == "r1" for name in after)
        assert not fleet.replicas[0].failed  # still inside the window

    def test_stalled_replica_is_unresponsive_not_failed(self, cfg_8b_single):
        sim = Simulator()
        fleet = Fleet(
            sim,
            chunked_factory,
            cfg_8b_single,
            FleetConfig(replicas=2, health=HealthConfig(misses_to_fail=1_000_000)),
        )
        replica = fleet.replicas[0]
        assert replica.responsive
        for inst in iter_instances(replica.system):
            inst.device.stall(5.0)
        assert not replica.responsive
        assert not replica.failed


class TestRoundRobinStallWindow:
    def test_round_robin_skips_stalled_replica_before_detection(self, cfg_8b_single):
        """Round-robin is not a scoring policy, but the stall window is the
        same: during kill→detection it must not keep delivering every Nth
        request into the wedge while the scoring policies steer around it."""
        sim = Simulator()
        fleet_cfg = FleetConfig(
            replicas=2,
            policy="round-robin",
            health=HealthConfig(misses_to_fail=1_000_000, restart_after=None),
        )
        fleet = Fleet(sim, chunked_factory, cfg_8b_single, fleet_cfg)
        chosen = spy_on_choices(sim, fleet)
        workload = conversation_workload(24, request_rate=3.0, seed=5)
        fleet.submit(workload)

        def stall_r0():
            for inst in iter_instances(fleet.replicas[0].system):
                inst.device.stall(100_000.0)

        sim.schedule_at(STALL_AT, stall_r0)
        sim.run(until=workload.requests[-1].arrival_time + 120.0)

        before = [name for t, name in chosen if t < STALL_AT]
        after = [name for t, name in chosen if t >= STALL_AT]
        # Validity: both replicas were in rotation before the stall and
        # traffic kept arriving during the window.
        assert "r0" in before and "r1" in before
        assert after
        # The regression: every post-stall decision avoids the wedged
        # replica even though it is not (yet) marked failed.
        assert all(name == "r1" for name in after)
        assert not fleet.replicas[0].failed  # still inside the window


class TestKillWindow:
    def test_no_dispatch_to_killed_replica_until_restart(self, cfg_8b_single):
        sim = Simulator()
        fleet = Fleet(
            sim,
            chunked_factory,
            cfg_8b_single,
            FleetConfig(replicas=2, policy="prefix-affinity", health=HealthConfig()),
        )
        chosen = spy_on_choices(sim, fleet)
        workload = conversation_workload(24, request_rate=3.0, seed=5)
        fleet.submit(workload)
        restart_after = 5.0
        sim.schedule_at(
            STALL_AT,
            lambda: fleet.fail_replica(
                fleet.replicas[0], reason="test-kill", restart_after=restart_after
            ),
        )
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        dead_window = [
            name for t, name in chosen if STALL_AT <= t < STALL_AT + restart_after
        ]
        assert all(name == "r1" for name in dead_window)
        # After restart the slot is routable again and the run drains.
        assert fleet.replicas[0].generation == 1
        assert fleet.router.requests_lost == 0
