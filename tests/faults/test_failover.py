"""Replica-kill failover: re-dispatch, KV loss, honest TTFT, zero loss."""

from repro.cluster import Fleet, FleetConfig, HealthConfig, RetryPolicy
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.serving.base import iter_instances
from repro.sim import Simulator
from repro.workloads import sharegpt_workload

from tests.faults.conftest import chunked_factory

RESTART = 1.0


def kill_plan(at=1.0, target="r0", restart_after=RESTART):
    return FaultPlan(
        specs=(
            FaultSpec(
                at=at, kind=FaultKind.REPLICA_KILL, target=target, restart_after=restart_after
            ),
        )
    )


class TestKillRecovery:
    def test_mid_run_kill_loses_zero_admitted_requests(self, chaos_fleet):
        sim, fleet, injector = chaos_fleet(
            kill_plan(), FleetConfig(replicas=4, health=HealthConfig())
        )
        workload = sharegpt_workload(32, rate=16.0, seed=21)
        fleet.submit(workload)
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        router = fleet.router
        assert injector.inflight_at_kill[0] > 0  # the kill actually hit work
        assert router.requests_lost == 0
        assert router.requests_shed == 0
        assert fleet.summarize().requests_finished == len(workload)
        assert router.requests_retried >= injector.inflight_at_kill[0]

    def test_kill_discards_dead_generation_kv_cache(self, chaos_fleet):
        sim, fleet, _ = chaos_fleet(kill_plan(), FleetConfig(replicas=2, health=HealthConfig()))
        workload = sharegpt_workload(16, rate=16.0, seed=22)
        fleet.submit(workload)
        old_system = fleet.replicas[0].system
        old_cached = {}
        sim.schedule_at(
            0.99,
            lambda: old_cached.update(
                tokens=sum(
                    inst.cache.pool.used_pages
                    for inst in iter_instances(fleet.replicas[0].system)
                )
            ),
        )
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        replica = fleet.replicas[0]
        assert replica.generation == 1
        assert replica.system is not old_system
        # The replacement started cold: no prefix was carried over.
        assert old_cached["tokens"] > 0

    def test_victim_ttft_spans_the_crash(self, chaos_fleet):
        sim, fleet, injector = chaos_fleet(
            kill_plan(), FleetConfig(replicas=1, health=HealthConfig())
        )
        workload = sharegpt_workload(6, rate=12.0, seed=23)
        fleet.submit(workload)
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        assert injector.inflight_at_kill[0] > 0
        merged = fleet.summarize()
        assert merged.requests_finished == len(workload)
        # In a 1-replica fleet every in-flight victim waited out the
        # restart, so the worst TTFT must span the outage — not be reset by
        # the re-dispatch.
        collectors = [*fleet._retired_collectors, fleet.replicas[0].system.metrics]
        worst = max(t for c in collectors for t in c.ttft_values())
        assert worst >= RESTART

    def test_dead_replica_work_survives_in_fleet_summary(self, chaos_fleet):
        sim, fleet, _ = chaos_fleet(kill_plan(at=2.0), FleetConfig(replicas=2, health=HealthConfig()))
        workload = sharegpt_workload(20, rate=10.0, seed=24)
        fleet.submit(workload)
        finished_before_kill = {}
        sim.schedule_at(
            1.99,
            lambda: finished_before_kill.update(
                n=len(fleet.replicas[0].system.metrics.finished_records)
            ),
        )
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        merged = fleet.summarize()
        # Requests the dead generation completed before the crash are real
        # delivered work and stay in the fleet totals via the retired
        # collector.
        assert merged.requests_finished == len(workload)
        assert finished_before_kill["n"] > 0
        assert len(fleet._retired_collectors) == 1


class TestNoRecovery:
    def test_kill_without_recovery_loses_inflight_honestly(self, cfg_8b_single):
        sim = Simulator()
        fleet = Fleet(
            sim,
            chunked_factory,
            cfg_8b_single,
            FleetConfig(replicas=1, health=HealthConfig()),
        )
        injector = FaultInjector(sim, fleet, kill_plan(restart_after=None))
        injector.arm()
        workload = sharegpt_workload(8, rate=8.0, seed=25)
        fleet.submit(workload)
        sim.run(until=3600.0)
        router = fleet.router
        # No restart, no autoscaler: everything admitted and unfinished is
        # classified lost; nothing hangs, nothing is silently dropped.
        assert sim.pending_productive == 0
        assert router.requests_lost > 0
        c = router.conservation()
        assert c["arrivals"] == c["completed"] + c["dropped"] + c["shed"] + c["lost"]
        assert c["queued_now"] == c["held_now"] == c["inflight_now"] == 0


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(initial_backoff=0.05, multiplier=2.0, max_backoff=0.3)
        assert [policy.backoff(i) for i in range(5)] == [0.05, 0.1, 0.2, 0.3, 0.3]

    def test_rejects_bad_values(self):
        import pytest

        with pytest.raises(ValueError):
            RetryPolicy(initial_backoff=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_backoff=0.01, initial_backoff=0.05)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_backoff_spacing_observed_in_simulation(self, cfg_8b_single):
        policy = RetryPolicy(initial_backoff=0.1, multiplier=2.0, max_backoff=10.0, max_attempts=4)
        plan = FaultPlan(
            specs=(FaultSpec(at=0.0, kind=FaultKind.NETWORK_DROP, duration=0.0, magnitude=1.0),)
        )
        sim = Simulator()
        fleet = Fleet(
            sim,
            chunked_factory,
            cfg_8b_single,
            FleetConfig(replicas=1, retry=policy, health=HealthConfig()),
        )
        FaultInjector(sim, fleet, plan).arm()
        times = []
        original = fleet.router._retry_delivery

        def spy(request, attempt):
            times.append(sim.now)
            original(request, attempt)

        fleet.router._retry_delivery = spy
        workload = sharegpt_workload(1, rate=1.0, seed=26)
        fleet.submit(workload)
        sim.run(until=3600.0)
        # Drops at attempts 0..3; the spy records each drop's time.  Gaps
        # between consecutive retries follow the exponential schedule.
        assert len(times) == 4
        gaps = [b - a for a, b in zip(times, times[1:])]
        expected = [policy.backoff(i) + fleet.router.overhead for i in range(3)]
        for gap, want in zip(gaps, expected):
            assert abs(gap - want) < 1e-9
        assert fleet.router.requests_lost == 1
