"""FaultInjector delivery: each fault kind lands where and when planned."""

from repro.cluster import FleetConfig, HealthConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.serving.base import iter_instances
from repro.workloads import sharegpt_workload


def devices(replica):
    return [inst.device for inst in iter_instances(replica.system)]


class TestDegrade:
    def test_degrade_applies_and_recovers(self, chaos_fleet):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    at=1.0,
                    kind=FaultKind.DEVICE_DEGRADE,
                    target="r0",
                    duration=2.0,
                    magnitude=0.5,
                ),
            )
        )
        sim, fleet, injector = chaos_fleet(plan)
        nominal = devices(fleet.replicas[0])[0].effective_bandwidth
        seen = {}
        sim.schedule(2.0, lambda: seen.update(mid=devices(fleet.replicas[0])[0].effective_bandwidth))
        sim.schedule(4.0, lambda: seen.update(after=devices(fleet.replicas[0])[0].effective_bandwidth))
        sim.run()
        assert seen["mid"] == nominal * 0.5
        assert seen["after"] == nominal
        assert injector.by_kind["device-degrade"] == 1

    def test_degrade_only_touches_target(self, chaos_fleet):
        plan = FaultPlan(
            specs=(
                FaultSpec(at=1.0, kind=FaultKind.DEVICE_DEGRADE, target="r0", magnitude=0.5),
            )
        )
        sim, fleet, _ = chaos_fleet(plan)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert all(d.degraded for d in devices(fleet.replicas[0]))
        assert not any(d.degraded for d in devices(fleet.replicas[1]))


class TestStall:
    def test_bounded_stall_resolves_without_watchdog(self, chaos_fleet):
        plan = FaultPlan(
            specs=(FaultSpec(at=1.0, kind=FaultKind.PARTITION_STALL, target="r0", duration=0.3),)
        )
        # misses_to_fail high enough that the stall ends before detection.
        cfg = FleetConfig(replicas=2, health=HealthConfig(interval=0.25, misses_to_fail=10))
        sim, fleet, _ = chaos_fleet(plan, cfg)
        seen = {}
        sim.schedule(1.1, lambda: seen.update(mid=devices(fleet.replicas[0])[0].stalled))
        sim.schedule(2.0, lambda: seen.update(after=devices(fleet.replicas[0])[0].stalled))
        sim.run()
        assert seen == {"mid": True, "after": False}
        assert fleet.failures == 0

    def test_watchdog_detects_hung_replica(self, chaos_fleet):
        plan = FaultPlan(
            specs=(FaultSpec(at=1.0, kind=FaultKind.PARTITION_STALL, target="r0", duration=0.0),)
        )
        cfg = FleetConfig(
            replicas=2,
            health=HealthConfig(interval=0.25, misses_to_fail=3, restart_after=1.0),
        )
        sim, fleet, injector = chaos_fleet(plan, cfg)
        workload = sharegpt_workload(10, rate=10.0, seed=5)
        fleet.submit(workload)
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        assert fleet.failures == 1
        assert fleet.restarts == 1
        assert fleet.health.failures_detected == 1
        # The hung generation is gone; the replacement serves normally.
        assert not any(d.stalled for d in devices(fleet.replicas[0]))
        assert fleet.replicas[0].generation == 1


class TestNetwork:
    def test_drop_window_forces_retries(self, chaos_fleet):
        plan = FaultPlan(
            specs=(FaultSpec(at=0.0, kind=FaultKind.NETWORK_DROP, duration=0.5, magnitude=1.0),)
        )
        sim, fleet, injector = chaos_fleet(plan)
        workload = sharegpt_workload(4, rate=40.0, seed=6)
        fleet.submit(workload)
        sim.run(until=3600.0)
        router = fleet.router
        # Every delivery inside the window dropped; retries (with backoff
        # past the window's end) eventually landed every request.
        assert router.deliveries_dropped > 0
        assert router.requests_retried >= router.deliveries_dropped
        assert router.requests_completed + router.requests_dropped == router.arrivals
        assert router.requests_lost == 0

    def test_delay_window_postpones_delivery(self, chaos_fleet):
        extra = 0.25
        plan = FaultPlan(
            specs=(FaultSpec(at=0.0, kind=FaultKind.NETWORK_DELAY, duration=10.0, magnitude=extra),)
        )
        sim, fleet, _ = chaos_fleet(plan)
        workload = sharegpt_workload(3, rate=10.0, seed=7)
        fleet.submit(workload)
        sim.run(until=3600.0)
        merged = fleet.summarize()
        # Every TTFT carries at least the injected network delay.
        assert merged.ttft_p50 >= extra

    def test_exhausted_retries_lose_the_request(self, cfg_8b_single):
        from repro.cluster import Fleet, RetryPolicy
        from repro.sim import Simulator
        from tests.faults.conftest import chunked_factory

        plan = FaultPlan(
            specs=(FaultSpec(at=0.0, kind=FaultKind.NETWORK_DROP, duration=0.0, magnitude=1.0),)
        )
        sim = Simulator()
        fleet = Fleet(
            sim,
            chunked_factory,
            cfg_8b_single,
            FleetConfig(
                replicas=1,
                retry=RetryPolicy(initial_backoff=0.01, max_attempts=3),
                health=HealthConfig(),
            ),
        )
        injector = FaultInjector(sim, fleet, plan)
        injector.arm()
        workload = sharegpt_workload(1, rate=1.0, seed=8)
        fleet.submit(workload)
        sim.run(until=3600.0)
        router = fleet.router
        # attempts 0 and 1 drop and retry; attempt 2 would exceed the
        # budget, so the request is declared lost — never silently stuck.
        assert router.deliveries_dropped == 2
        assert router.requests_lost == 1
        assert sim.pending_productive == 0


class TestStormAndResolution:
    def test_storm_preempts_running_batch(self, chaos_fleet):
        plan = FaultPlan(
            specs=(FaultSpec(at=1.0, kind=FaultKind.PREEMPTION_STORM, target="r0"),)
        )
        cfg = FleetConfig(replicas=1, health=HealthConfig())
        sim, fleet, injector = chaos_fleet(plan, cfg)
        workload = sharegpt_workload(8, rate=40.0, seed=9)
        fleet.submit(workload)
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        system = fleet.replicas[0].system
        assert system.storm_preemptions > 0
        # A storm costs time, never requests.
        assert fleet.summarize().requests_finished == len(workload)

    def test_unresolvable_target_is_skipped(self, chaos_fleet):
        plan = FaultPlan(
            specs=(FaultSpec(at=1.0, kind=FaultKind.REPLICA_KILL, target="r9"),)
        )
        sim, fleet, injector = chaos_fleet(plan)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert injector.injected == 0
        assert injector.skipped == 1
        assert fleet.failures == 0

    def test_seeded_victim_choice_is_reproducible(self, chaos_fleet):
        plan = FaultPlan(
            specs=(FaultSpec(at=1.0, kind=FaultKind.REPLICA_KILL, restart_after=None),),
            seed=5,
        )
        names = []
        for _ in range(2):
            sim, fleet, _ = chaos_fleet(plan)
            sim.schedule(2.0, lambda: None)
            sim.run()
            names.append([r.name for r in fleet.replicas if r.failed])
        assert names[0] == names[1]
        assert len(names[0]) == 1

    def test_double_arm_rejected(self, chaos_fleet):
        import pytest

        plan = FaultPlan()
        _, _, injector = chaos_fleet(plan)
        with pytest.raises(RuntimeError):
            injector.arm()
