"""FaultPlan construction, validation, ordering and serialisation."""

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec, default_chaos_plan


class TestFaultSpec:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FaultSpec(at=-1.0, kind=FaultKind.REPLICA_KILL)
        with pytest.raises(ValueError):
            FaultSpec(at=0.0, kind=FaultKind.REPLICA_KILL, duration=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(at=0.0, kind=FaultKind.REPLICA_KILL, restart_after=-2.0)
        with pytest.raises(ValueError):
            FaultSpec(at=0.0, kind=FaultKind.DEVICE_DEGRADE, magnitude=0.0)
        with pytest.raises(ValueError):
            FaultSpec(at=0.0, kind=FaultKind.DEVICE_DEGRADE, magnitude=1.5)
        with pytest.raises(ValueError):
            FaultSpec(at=0.0, kind=FaultKind.NETWORK_DROP, magnitude=1.01)
        with pytest.raises(ValueError):
            FaultSpec(at=0.0, kind=FaultKind.NETWORK_DELAY, magnitude=-0.1)

    def test_accepts_string_kinds(self):
        spec = FaultSpec(at=1.0, kind="replica-kill")
        assert spec.kind is FaultKind.REPLICA_KILL

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(at=1.0, kind="meteor-strike")


class TestFaultPlan:
    def test_specs_sorted_by_time(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(at=5.0, kind=FaultKind.REPLICA_KILL),
                FaultSpec(at=1.0, kind=FaultKind.PREEMPTION_STORM),
                FaultSpec(at=3.0, kind=FaultKind.PARTITION_STALL, duration=1.0),
            )
        )
        assert [s.at for s in plan] == [1.0, 3.0, 5.0]

    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(at=1.0, kind=FaultKind.REPLICA_KILL, target="r1", restart_after=2.0),
                FaultSpec(at=2.0, kind=FaultKind.NETWORK_DROP, duration=3.0, magnitude=0.25),
            ),
            seed=7,
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored == plan
        assert restored.to_json() == plan.to_json()

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(seed=3, horizon=60.0)
        b = FaultPlan.random(seed=3, horizon=60.0)
        c = FaultPlan.random(seed=4, horizon=60.0)
        assert a == b
        assert a != c

    def test_random_respects_counts(self):
        plan = FaultPlan.random(
            seed=0,
            horizon=30.0,
            counts={FaultKind.REPLICA_KILL: 2, FaultKind.NETWORK_DROP: 1},
        )
        kinds = [s.kind for s in plan]
        assert kinds.count(FaultKind.REPLICA_KILL) == 2
        assert kinds.count(FaultKind.NETWORK_DROP) == 1
        assert len(plan) == 3

    def test_default_plan_covers_every_kind_once(self):
        plan = default_chaos_plan(10.0)
        assert sorted(s.kind.value for s in plan) == sorted(k.value for k in FaultKind)
        assert all(0 < s.at < 10.0 for s in plan)
