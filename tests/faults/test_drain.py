"""Bounded termination: faulted runs must drain, never hang.

Regression suite for the orphaned-in-flight hang: before daemon events
and event scopes, a replica that died with requests in flight left their
completion events queued forever, so ``sim.run()`` never returned and
the fleet reported phantom in-flight work.
"""

from repro.cluster import Fleet, FleetConfig, HealthConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.sim import Simulator
from repro.workloads import sharegpt_workload

from tests.faults.conftest import chunked_factory

HORIZON = 3600.0


def run_with(sim, fleet, workload):
    fleet.submit(workload)
    sim.run(until=workload.requests[-1].arrival_time + HORIZON)
    return fleet.router.conservation()


class TestBoundedTermination:
    def test_kill_with_inflight_does_not_hang(self, chaos_fleet):
        plan = FaultPlan(
            specs=(FaultSpec(at=0.5, kind=FaultKind.REPLICA_KILL, target="r0", restart_after=1.0),)
        )
        sim, fleet, injector = chaos_fleet(plan, FleetConfig(replicas=2, health=HealthConfig()))
        c = run_with(sim, fleet, sharegpt_workload(16, rate=32.0, seed=41))
        assert injector.inflight_at_kill[0] > 0
        # The run returned (we are here) with no productive work pending
        # and no request stuck in a queue or on a dead replica.
        assert sim.pending_productive == 0
        assert sim.now < HORIZON  # drained long before the safety horizon
        assert c["queued_now"] == c["held_now"] == c["inflight_now"] == 0

    def test_kill_without_any_recovery_still_drains(self, cfg_8b_single):
        # Worst case: sole replica dies, no restart, no autoscaler.  The
        # router must classify the orphans as lost instead of waiting for
        # events that will never fire.
        plan = FaultPlan(
            specs=(FaultSpec(at=0.5, kind=FaultKind.REPLICA_KILL, restart_after=None),)
        )
        sim = Simulator()
        fleet = Fleet(
            sim, chunked_factory, cfg_8b_single, FleetConfig(replicas=1, health=HealthConfig())
        )
        FaultInjector(sim, fleet, plan).arm()
        c = run_with(sim, fleet, sharegpt_workload(8, rate=16.0, seed=42))
        assert sim.pending_productive == 0
        assert c["inflight_now"] == 0
        assert c["lost"] > 0
        assert c["arrivals"] == c["completed"] + c["dropped"] + c["shed"] + c["lost"]

    def test_unbounded_stall_does_not_hang_run(self, chaos_fleet):
        # A hung partition with no duration is only recoverable through the
        # watchdog; detection + restart must bound the run.
        plan = FaultPlan(
            specs=(FaultSpec(at=0.5, kind=FaultKind.PARTITION_STALL, target="r0", duration=0.0),)
        )
        cfg = FleetConfig(
            replicas=2, health=HealthConfig(interval=0.25, misses_to_fail=3, restart_after=0.5)
        )
        sim, fleet, _ = chaos_fleet(plan, cfg)
        c = run_with(sim, fleet, sharegpt_workload(12, rate=24.0, seed=43))
        assert fleet.failures == 1
        assert sim.pending_productive == 0
        assert c["arrivals"] == c["completed"] + c["dropped"] + c["shed"] + c["lost"]
        assert c["lost"] == 0  # watchdog recovery re-dispatched everything

    def test_health_ticks_never_keep_idle_sim_alive(self, chaos_fleet):
        # With no work at all, health and autoscaler ticks are daemons: the
        # run ends immediately at t=0 instead of probing forever.
        sim, fleet, _ = chaos_fleet(FaultPlan())
        sim.run(until=HORIZON)
        assert sim.now == 0.0
        assert sim.pending_productive == 0
