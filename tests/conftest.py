"""Shared fixtures: small deployments and cached estimators for speed."""

from __future__ import annotations

import pytest

from repro.gpu import A100
from repro.models import LLAMA_8B, LLAMA_70B
from repro.serving import ServingConfig
from repro.sim import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def cfg_70b() -> ServingConfig:
    """The paper's main testbed: Llama-70B on 8xA100."""
    return ServingConfig(model=LLAMA_70B, spec=A100, n_gpus=8)


@pytest.fixture
def cfg_8b() -> ServingConfig:
    """Llama-8B on 8xA100."""
    return ServingConfig(model=LLAMA_8B, spec=A100, n_gpus=8)


@pytest.fixture
def cfg_8b_single() -> ServingConfig:
    """Llama-8B on one A100 (§4.3.1)."""
    return ServingConfig(model=LLAMA_8B, spec=A100, n_gpus=1)
