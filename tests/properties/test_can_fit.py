"""Property test: RadixCache.can_fit_path is a true promise.

The admission bugfix this pins down: ``can_fit`` checked one page ceiling
over the *total* missing tokens against free + evictable pages, while the
actual insert allocates per-segment ceilings **and pins the existing prefix
chain** (shrinking the evictable set).  Either divergence let admission say
"fits" and the allocation then raise :class:`PoolExhaustedError` mid-flight.
``can_fit_path`` mirrors the acquire+insert sequence exactly; this property
drives randomized workloads through both and asserts the promise holds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvcache import KVCachePool, PoolExhaustedError, RadixCache, Segment

#: Small uid/token spaces so paths collide and the tree grows shared prefixes.
segment_lists = st.lists(
    st.tuples(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=50)),
    min_size=1,
    max_size=4,
)


def build_path(pairs) -> list[Segment]:
    return [Segment(uid=uid, tokens=tokens) for uid, tokens in pairs]


class TestCanFitPathPromise:
    @given(
        capacity_pages=st.integers(min_value=1, max_value=12),
        requests=st.lists(segment_lists, min_size=1, max_size=12),
        keep=st.lists(st.booleans(), min_size=12, max_size=12),
    )
    @settings(max_examples=300, deadline=None)
    def test_can_fit_path_true_implies_insert_never_raises(
        self, capacity_pages, requests, keep
    ):
        pool = KVCachePool(capacity_pages * 16.0, kv_bytes_per_token=1.0, page_tokens=16)
        cache = RadixCache(pool)
        leases = []
        for i, pairs in enumerate(requests):
            path = build_path(pairs)
            # Mirror ServingSystem.allocate_context exactly: acquire pins the
            # cached prefix, admission checks the full path, insert adds only
            # the segments beyond the lease's depth.
            lease = cache.acquire(path)
            if not cache.can_fit_path(path):
                cache.release(lease, keep_cached=True)
                continue
            try:
                cache.insert(lease, path[lease.depth :])
            except PoolExhaustedError as exc:  # pragma: no cover
                raise AssertionError(
                    f"can_fit_path promised admission but insert raised: {exc}"
                ) from exc
            leases.append((lease, keep[i % len(keep)]))
            # Occasionally release to mix pinned/unpinned tree shapes.
            if len(leases) >= 2 and i % 2:
                done, keep_cached = leases.pop(0)
                cache.release(done, keep_cached=keep_cached)
        for lease, keep_cached in leases:
            cache.release(lease, keep_cached=keep_cached)

    @given(
        capacity_pages=st.integers(min_value=1, max_value=8),
        pairs=segment_lists,
    )
    @settings(max_examples=200, deadline=None)
    def test_can_fit_path_false_means_genuinely_oversized_when_idle(
        self, capacity_pages, pairs
    ):
        """On an empty cache, a rejection must mean the path truly exceeds
        capacity — per-segment page ceilings, not the one-ceiling total."""
        pool = KVCachePool(capacity_pages * 16.0, kv_bytes_per_token=1.0, page_tokens=16)
        cache = RadixCache(pool)
        path = build_path(pairs)
        needed = sum(pool.pages_for(tokens) for _, tokens in pairs)
        assert cache.can_fit_path(path) == (needed <= pool.capacity_pages)
