"""Property-based tests for the cost model and estimator bucketing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimator import BATCH_SIZE_BUCKETS, TOKEN_BUCKETS, batch_bucket, token_bucket
from repro.gpu import A100
from repro.models import LLAMA_8B, LLAMA_70B, QWEN3_235B, CostModel, PrefillItem

tokens = st.integers(min_value=1, max_value=131072)
small_tokens = st.integers(min_value=1, max_value=8192)
batch = st.integers(min_value=1, max_value=256)


def cm(model=LLAMA_70B, n_gpus=8) -> CostModel:
    return CostModel(model, n_gpus=n_gpus, nvlink_bandwidth=A100.nvlink_bandwidth)


class TestCostMonotonicity:
    @given(new=small_tokens, extra=small_tokens, reused=tokens)
    @settings(max_examples=100)
    def test_prefill_flops_increase_with_new_tokens(self, new, extra, reused):
        model = cm()
        smaller = model.prefill_layer([PrefillItem(new=new, reused=reused)])
        larger = model.prefill_layer([PrefillItem(new=new + extra, reused=reused)])
        assert larger.raw_flops > smaller.raw_flops
        assert larger.bytes > smaller.bytes

    @given(new=small_tokens, reused=tokens, extra=tokens)
    @settings(max_examples=100)
    def test_prefill_cost_increases_with_reuse(self, new, reused, extra):
        model = cm()
        smaller = model.prefill_layer([PrefillItem(new=new, reused=reused)])
        larger = model.prefill_layer([PrefillItem(new=new, reused=reused + extra)])
        assert larger.raw_flops > smaller.raw_flops
        assert larger.bytes >= smaller.bytes

    @given(bs=st.integers(min_value=1, max_value=128), ctx=tokens)
    @settings(max_examples=100)
    def test_decode_cost_scales_with_batch(self, bs, ctx):
        model = cm()
        one = model.decode_layer([ctx] * bs)
        two = model.decode_layer([ctx] * (bs * 2))
        assert two.raw_flops > one.raw_flops
        assert two.bytes > one.bytes

    @given(new=small_tokens, reused=tokens)
    @settings(max_examples=100)
    def test_effective_flops_never_below_raw(self, new, reused):
        """Efficiency adjustment only inflates compute, never deflates."""
        cost = cm().prefill_layer([PrefillItem(new=new, reused=reused)])
        assert cost.flops >= cost.raw_flops

    @given(new=small_tokens)
    @settings(max_examples=60)
    def test_gemm_efficiency_in_unit_interval(self, new):
        model = cm()
        eff = model.gemm_efficiency(new)
        assert 0.0 < eff <= 1.0

    @given(bs=batch)
    @settings(max_examples=60)
    def test_moe_touches_between_active_and_all_experts(self, bs):
        model = cm(QWEN3_235B)
        touched = model._moe_experts_touched(bs)
        assert QWEN3_235B.active_experts <= touched + 1e-9
        assert touched <= QWEN3_235B.num_experts + 1e-9

    @given(new=small_tokens, reused=st.integers(min_value=0, max_value=65536))
    @settings(max_examples=60)
    def test_costs_nonnegative_and_finite(self, new, reused):
        for model in (cm(LLAMA_8B, 1), cm(LLAMA_70B, 8), cm(QWEN3_235B, 8)):
            cost = model.prefill_full([PrefillItem(new=new, reused=reused)])
            assert cost.flops > 0 and cost.bytes > 0
            assert cost.comm_time >= 0


class TestBucketingProperties:
    @given(value=st.floats(min_value=0, max_value=1e7))
    @settings(max_examples=100)
    def test_token_bucket_is_valid_and_covering(self, value):
        bucket = token_bucket(value)
        assert bucket in TOKEN_BUCKETS
        if value <= TOKEN_BUCKETS[-1]:
            assert bucket >= value

    @given(value=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100)
    def test_batch_bucket_is_valid(self, value):
        bucket = batch_bucket(value)
        assert bucket in BATCH_SIZE_BUCKETS
        if value <= BATCH_SIZE_BUCKETS[-1]:
            assert bucket >= value

    @given(a=st.floats(min_value=0, max_value=1e6), b=st.floats(min_value=0, max_value=1e6))
    @settings(max_examples=100)
    def test_token_bucket_monotone(self, a, b):
        low, high = sorted((a, b))
        assert token_bucket(low) <= token_bucket(high)
