"""Property-based tests (hypothesis) over every workload generator.

Invariants every generator must uphold regardless of parameters:

* arrivals are sorted (the Workload constructor's contract);
* each session's turn indices are dense ``0..n-1`` and arrivals are
  monotone along them (``validate_sessions`` semantics);
* agentic resumes never arrive before their tool delay has elapsed;
* RAG requests retrieving the same document share the *identical*
  corpus segment (prefix reuse is identity-based).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    agentic_workload,
    conversation_workload,
    loogle_workload,
    mixed_workload,
    openthoughts_workload,
    rag_workload,
    sharegpt_workload,
    toolagent_workload,
)

seeds = st.integers(min_value=0, max_value=2**16)
sizes = st.integers(min_value=1, max_value=40)
rates = st.floats(min_value=0.2, max_value=16.0, allow_nan=False)

#: (builder, kwargs-style) for the single-turn and multi-turn generators.
GENERATORS = [
    lambda n, rate, seed: sharegpt_workload(n, rate=rate, seed=seed),
    lambda n, rate, seed: loogle_workload(n, rate=rate, seed=seed),
    lambda n, rate, seed: openthoughts_workload(n, rate=rate, seed=seed),
    lambda n, rate, seed: mixed_workload(n, rate=rate, seed=seed),
    lambda n, rate, seed: conversation_workload(n, request_rate=rate, seed=seed),
    lambda n, rate, seed: toolagent_workload(n, request_rate=rate, seed=seed),
    lambda n, rate, seed: agentic_workload(n, rate, seed=seed),
    lambda n, rate, seed: rag_workload(n, rate=rate, seed=seed),
]


def _sessions(workload):
    by_session = {}
    for request in workload:
        by_session.setdefault(request.session_id, []).append(request)
    for turns in by_session.values():
        turns.sort(key=lambda r: r.turn_index)
    return by_session


class TestUniversalInvariants:
    @given(
        index=st.integers(min_value=0, max_value=len(GENERATORS) - 1),
        n=sizes,
        rate=rates,
        seed=seeds,
    )
    @settings(max_examples=60, deadline=None)
    def test_arrivals_sorted_and_ids_unique(self, index, n, rate, seed):
        workload = GENERATORS[index](n, rate, seed)
        arrivals = [r.arrival_time for r in workload]
        assert arrivals == sorted(arrivals)
        assert all(t >= 0.0 for t in arrivals)
        ids = [r.request_id for r in workload]
        assert len(set(ids)) == len(ids)

    @given(
        index=st.integers(min_value=0, max_value=len(GENERATORS) - 1),
        n=sizes,
        rate=rates,
        seed=seeds,
    )
    @settings(max_examples=60, deadline=None)
    def test_sessions_dense_and_monotone(self, index, n, rate, seed):
        workload = GENERATORS[index](n, rate, seed)
        for turns in _sessions(workload).values():
            assert [r.turn_index for r in turns] == list(range(len(turns)))
            arrivals = [r.arrival_time for r in turns]
            assert arrivals == sorted(arrivals)


class TestAgenticProperties:
    @given(
        n=st.integers(min_value=1, max_value=25),
        seed=seeds,
        delay=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_resumes_wait_for_their_tools(self, n, seed, delay):
        workload = agentic_workload(n, 2.0, seed=seed, tool_delay_mean=delay)
        for turns in _sessions(workload).values():
            assert turns[0].tool_pause is None
            for earlier, later in zip(turns, turns[1:]):
                assert later.tool_pause is not None
                gap = later.arrival_time - earlier.arrival_time
                assert gap >= later.tool_pause - 1e-9

    @given(n=st.integers(min_value=1, max_value=20), seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_delay_never_changes_token_shapes(self, n, seed):
        instant = agentic_workload(n, 2.0, seed=seed, tool_delay_mean=0.0)
        paused = agentic_workload(n, 2.0, seed=seed, tool_delay_mean=7.5)
        shape = lambda w: sorted(
            (r.request_id, r.session_id, r.turn_index, r.input_tokens, r.output_tokens)
            for r in w
        )
        assert shape(instant) == shape(paused)


class TestRagProperties:
    @given(
        n=st.integers(min_value=1, max_value=40),
        seed=seeds,
        corpus=st.integers(min_value=1, max_value=32),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_shared_docs_are_identical_segments(self, n, seed, corpus, k):
        workload = rag_workload(
            n, rate=4.0, seed=seed, corpus_docs=corpus, retrieval_k=k
        )
        canonical = {}
        for request in workload:
            assert len(request.docs) == min(k, corpus)
            assert len(set(request.docs)) == len(request.docs)
            assert all(0 <= doc < corpus for doc in request.docs)
            for doc, segment in zip(request.docs, request.history):
                assert canonical.setdefault(doc, segment) is segment
