"""Exact-equality tests of the optimised waterfill against a reference.

:func:`repro.gpu.device.waterfill` grew bit-exact fast paths (single
demand, comfortably-under-capacity batches).  These tests pin the claim
that the fast paths are *shortcuts*, not approximations: the optimised
function must return the exact same floats as the plain round-based
algorithm on every input, so simulation results can never depend on which
branch ran.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import waterfill

_EPS = 1e-9  # must match device._EPS


def reference_waterfill(demands: list[float], capacity: float) -> list[float]:
    """The round-based max-min fair allocation, with no fast paths.

    This is the algorithm :func:`waterfill` implemented before the fast
    paths were added, kept verbatim as the behavioural oracle.
    """
    n = len(demands)
    alloc = [0.0] * n
    if capacity <= _EPS:
        return alloc
    unsatisfied = [i for i in range(n) if demands[i] > _EPS]
    remaining = capacity
    while unsatisfied and remaining > _EPS:
        share = remaining / len(unsatisfied)
        capped = []
        still = []
        for i in unsatisfied:
            if demands[i] <= share + _EPS:
                capped.append(i)
            else:
                still.append(i)
        if not capped:
            for i in unsatisfied:
                alloc[i] = share
            return alloc
        for i in capped:
            alloc[i] = demands[i]
            remaining -= demands[i]
        unsatisfied = still
    return alloc


def assert_bit_identical(demands: list[float], capacity: float) -> None:
    fast = waterfill(demands, capacity)
    slow = reference_waterfill(list(demands), capacity)
    assert len(fast) == len(slow)
    for got, want in zip(fast, slow):
        # Exact float equality, deliberately: not approximately equal.
        assert got == want, (demands, capacity, fast, slow)


demand_values = st.one_of(
    st.floats(min_value=0.0, max_value=1e13, allow_nan=False),
    st.just(math.inf),
)


class TestWaterfillMatchesReference:
    @given(
        demands=st.lists(demand_values, min_size=1, max_size=12),
        capacity=st.floats(min_value=0.0, max_value=1e13, allow_nan=False),
    )
    @settings(max_examples=300)
    def test_exact_equality_general(self, demands, capacity):
        assert_bit_identical(demands, capacity)

    @given(demand=demand_values, capacity=st.floats(min_value=0.0, max_value=1e13))
    @settings(max_examples=200)
    def test_exact_equality_single_demand(self, demand, capacity):
        """The n == 1 fast path."""
        assert_bit_identical([demand], capacity)

    @given(
        demands=st.lists(
            st.floats(min_value=0.0, max_value=1e9), min_size=2, max_size=12
        ),
        headroom=st.floats(min_value=1.0, max_value=1e12),
    )
    @settings(max_examples=200)
    def test_exact_equality_under_demand(self, demands, headroom):
        """The everyone-gets-their-demand fast path (sum < capacity - 1)."""
        capacity = sum(demands) + headroom
        assert_bit_identical(demands, capacity)

    @given(
        demands=st.lists(
            st.floats(min_value=1.0, max_value=1e12), min_size=2, max_size=12
        ),
        squeeze=st.floats(min_value=0.1, max_value=0.999),
    )
    @settings(max_examples=200)
    def test_exact_equality_over_demand(self, demands, squeeze):
        """The contended region where the round loop actually iterates."""
        capacity = sum(demands) * squeeze
        assert_bit_identical(demands, capacity)


class TestWaterfillEdgeCases:
    def test_empty_demand_list(self):
        assert waterfill([], 100.0) == []
        assert waterfill([], 0.0) == []

    def test_zero_capacity_gives_zeros(self):
        assert waterfill([5.0, math.inf, 0.0], 0.0) == [0.0, 0.0, 0.0]

    def test_all_inf_demands_split_capacity_equally(self):
        allocs = waterfill([math.inf, math.inf, math.inf, math.inf], 100.0)
        assert allocs == [25.0, 25.0, 25.0, 25.0]
        assert_bit_identical([math.inf] * 4, 100.0)

    def test_capacity_below_every_demand_splits_equally(self):
        allocs = waterfill([50.0, 60.0, 70.0], 30.0)
        assert allocs == [10.0, 10.0, 10.0]
        assert_bit_identical([50.0, 60.0, 70.0], 30.0)

    def test_demand_exactly_at_fair_share_is_capped(self):
        # share = 30 in round 1; the 30.0 demand caps at exactly 30.0 and
        # the leftover goes to the others.
        assert_bit_identical([30.0, 90.0, 90.0], 90.0)

    def test_zero_demands_stay_zero(self):
        allocs = waterfill([0.0, 10.0, 0.0], 100.0)
        assert allocs == [0.0, 10.0, 0.0]

    def test_single_demand_over_capacity_is_clamped(self):
        assert waterfill([500.0], 200.0) == [200.0]

    def test_single_demand_under_capacity_is_exact(self):
        assert waterfill([123.456], 200.0) == [123.456]
