"""Property: the fleet-level summary equals the merge of per-replica views.

Two angles:

1. A synthetic check on ``merge_collectors``: feeding disjoint request
   streams to separate collectors and merging must reproduce exactly what a
   single collector observing the union would report.
2. An end-to-end check on a deterministic seeded fleet run: the aggregated
   ``Summary`` must agree with re-merging the per-replica collectors, and
   the pooled percentile inputs must be the multiset union of the replicas'.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ChunkedPrefillServer
from repro.cluster import Fleet, FleetConfig
from repro.serving.metrics import MetricsCollector, merge_collectors
from repro.serving.slo import SLO
from repro.sim import Simulator
from repro.workloads import sharegpt_workload
from repro.workloads.request import Request
from repro.kvcache.radix import new_segment


SLO_DEFAULT = SLO(tbt=0.05, ttft=0.5)


def _feed(collector: MetricsCollector, request_id: int, arrival: float, tokens: int) -> None:
    request = Request(
        session_id=request_id,
        turn_index=0,
        arrival_time=arrival,
        history=[],
        new_input=new_segment(16),
        output_tokens=tokens,
    )
    request.request_id = request_id
    collector.on_arrival(request, arrival)
    collector.on_prefill_done(request, arrival + 0.05, new_tokens=16)
    for step in range(tokens):
        collector.on_tokens(request, arrival + 0.05 + 0.01 * (step + 1))


request_plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # replica assignment
        st.floats(min_value=0.0, max_value=50.0),  # arrival
        st.integers(min_value=1, max_value=12),  # decoded tokens
    ),
    min_size=1,
    max_size=30,
)


class TestMergeCollectors:
    @given(plans=request_plans)
    @settings(max_examples=60, deadline=None)
    def test_merge_matches_single_observer(self, plans):
        shards = [MetricsCollector(SLO_DEFAULT, name=f"r{i}") for i in range(4)]
        union = MetricsCollector(SLO_DEFAULT, name="union")
        for request_id, (shard, arrival, tokens) in enumerate(plans):
            _feed(shards[shard], request_id, arrival, tokens)
            _feed(union, request_id, arrival, tokens)
        merged = merge_collectors(shards, SLO_DEFAULT, name="union")
        merged_dict = merged.summarize().as_dict()
        union_dict = union.summarize().as_dict()
        assert merged_dict.keys() == union_dict.keys()
        for key, value in union_dict.items():
            if isinstance(value, str):
                assert merged_dict[key] == value, key
                continue
            # Means are summed in a different record order after merging, so
            # allow for last-ulp float drift; everything else is exact.
            assert merged_dict[key] == pytest.approx(value, rel=1e-9, abs=1e-12), key
        assert Counter(merged.ttft_values()) == Counter(union.ttft_values())
        assert Counter(merged.all_token_gaps()) == Counter(union.all_token_gaps())


class TestFleetAggregation:
    def test_fleet_summary_is_merge_of_replica_summaries(self, cfg_8b_single):
        sim = Simulator()
        fleet = Fleet(
            sim,
            lambda s, c: ChunkedPrefillServer(s, c, token_budget=256),
            cfg_8b_single,
            FleetConfig(replicas=3, policy="least-outstanding"),
        )
        workload = sharegpt_workload(24, rate=10.0, seed=11)
        fleet.submit(workload)
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)

        collectors = [r.system.metrics for r in fleet.replicas]
        remerged = merge_collectors(collectors, cfg_8b_single.slo)
        fleet_summary = fleet.summarize()
        assert fleet_summary.as_dict() == remerged.summarize().as_dict()

        pooled_ttfts = Counter(remerged.ttft_values())
        shard_ttfts = Counter()
        for collector in collectors:
            shard_ttfts.update(collector.ttft_values())
        assert pooled_ttfts == shard_ttfts

        pooled_gaps = Counter(remerged.all_token_gaps())
        shard_gaps = Counter()
        for collector in collectors:
            shard_gaps.update(collector.all_token_gaps())
        assert pooled_gaps == shard_gaps

        assert fleet_summary.requests_finished == len(workload)


class TestMixedConfigAggregation:
    """Same aggregation invariants when replicas run *different* configs."""

    def _mixed_fleet(self, cfg_8b_single):
        from repro.gpu.specs import H100, H200, L40S

        sim = Simulator()
        fleet = Fleet(
            sim,
            lambda s, c: ChunkedPrefillServer(s, c, token_budget=256),
            cfg_8b_single,
            FleetConfig(skus=(H200, H100, L40S), policy="least-outstanding"),
        )
        workload = sharegpt_workload(24, rate=10.0, seed=11)
        fleet.submit(workload)
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)
        return fleet, workload

    def test_summary_is_merge_across_different_serving_configs(self, cfg_8b_single):
        fleet, workload = self._mixed_fleet(cfg_8b_single)
        assert fleet.heterogeneous
        assert len({r.spec.name for r in fleet.replicas}) == 3

        collectors = [r.system.metrics for r in fleet.replicas]
        remerged = merge_collectors(collectors, cfg_8b_single.slo)
        assert fleet.summarize().as_dict() == remerged.summarize().as_dict()

        pooled = Counter(remerged.ttft_values())
        shards = Counter()
        for collector in collectors:
            shards.update(collector.ttft_values())
        assert pooled == shards
        assert fleet.summarize().requests_finished == len(workload)

    def test_per_replica_attribution_keeps_sku_identity(self, cfg_8b_single):
        fleet, workload = self._mixed_fleet(cfg_8b_single)
        per_replica = fleet.per_replica_summaries()
        assert set(per_replica) == {r.name for r in fleet.replicas}
        assert (
            sum(s.requests_finished for s in per_replica.values())
            == fleet.summarize().requests_finished
        )
        # Every replica's summary reflects only requests it actually served.
        for replica in fleet.replicas:
            assert per_replica[replica.name].requests_total == len(
                replica.system.metrics.records
            )

    def test_cost_ledger_conserves_per_replica_dollars(self, cfg_8b_single):
        fleet, _ = self._mixed_fleet(cfg_8b_single)
        ledger = fleet.cost_ledger()
        rows = ledger["per_replica"]
        assert set(rows) == {r.name for r in fleet.replicas}
        assert ledger["usd"] == sum(row["usd"] for row in rows.values())
        assert ledger["kwh"] == sum(row["kwh"] for row in rows.values())
        assert ledger["replica_seconds"] == sum(
            row["active_seconds"] for row in rows.values()
        )
        # Each row independently recomputes from uptime x that SKU's price.
        now = fleet.sim.now
        for replica in fleet.replicas:
            row = rows[replica.name]
            assert row["sku"] == replica.spec.name
            hours = replica.uptime(now) / 3600.0
            assert row["usd"] == pytest.approx(hours * replica.cfg.hourly_cost)
            assert row["kwh"] == pytest.approx(hours * replica.cfg.power_watts / 1000.0)
