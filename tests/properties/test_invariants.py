"""Property-based tests (hypothesis) for core data structures and invariants."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import waterfill
from repro.kvcache import KVCachePool, RadixCache, Segment
from repro.serving.metrics import percentile
from repro.sim import Simulator
from repro.workloads.distributions import BoundedLengths

finite_demands = st.lists(
    st.one_of(st.floats(min_value=0.0, max_value=1e13), st.just(math.inf)),
    min_size=1,
    max_size=12,
)


class TestWaterfillProperties:
    @given(demands=finite_demands, capacity=st.floats(min_value=1.0, max_value=1e13))
    @settings(max_examples=200)
    def test_allocations_never_exceed_demand_or_capacity(self, demands, capacity):
        allocs = waterfill(demands, capacity)
        assert len(allocs) == len(demands)
        assert sum(allocs) <= capacity * (1 + 1e-9)
        for demand, alloc in zip(demands, allocs):
            assert alloc <= demand + 1e-6 or math.isinf(demand)
            assert alloc >= 0.0

    @given(demands=finite_demands, capacity=st.floats(min_value=1.0, max_value=1e13))
    @settings(max_examples=200)
    def test_capacity_fully_used_when_demand_exceeds_it(self, demands, capacity):
        total_demand = sum(d for d in demands if not math.isinf(d))
        has_inf = any(math.isinf(d) for d in demands)
        allocs = waterfill(demands, capacity)
        if has_inf or total_demand >= capacity:
            assert sum(allocs) >= capacity * (1 - 1e-6)
        else:
            # All demands satisfiable: everyone gets exactly their demand.
            for demand, alloc in zip(demands, allocs):
                assert alloc >= demand - max(1e-6, demand * 1e-9)

    @given(
        demands=st.lists(st.floats(min_value=1.0, max_value=1e12), min_size=2, max_size=8),
        capacity=st.floats(min_value=1.0, max_value=1e12),
    )
    @settings(max_examples=200)
    def test_max_min_fairness_no_envy(self, demands, capacity):
        """No unsatisfied task receives less than another task's allocation
        above its own (max-min fairness)."""
        allocs = waterfill(demands, capacity)
        for i, (demand_i, alloc_i) in enumerate(zip(demands, allocs)):
            unsatisfied = alloc_i < demand_i - 1e-6
            if not unsatisfied:
                continue
            for j, alloc_j in enumerate(allocs):
                if i != j:
                    assert alloc_j <= alloc_i + 1e-6


class TestPercentileProperties:
    @given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200),
           pct=st.floats(min_value=0, max_value=100))
    @settings(max_examples=200)
    def test_percentile_within_range(self, values, pct):
        result = percentile(values, pct)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(values=st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_percentile_monotone_in_pct(self, values):
        p50 = percentile(values, 50)
        p90 = percentile(values, 90)
        p99 = percentile(values, 99)
        assert p50 <= p90 + 1e-9 <= p99 + 2e-9


class TestPoolProperties:
    @given(ops=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_alloc_free_round_trip_conserves_pages(self, ops):
        pool = KVCachePool(capacity_bytes=1e6, kv_bytes_per_token=10.0, page_tokens=16)
        allocated: list[int] = []
        for tokens in ops:
            if pool.can_allocate(tokens):
                allocated.append(pool.allocate(tokens))
        for pages in allocated:
            pool.release_pages(pages)
        assert pool.used_pages == 0
        assert pool.free_pages == pool.capacity_pages


class TestRadixProperties:
    @given(
        lengths=st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100)
    def test_pool_usage_matches_cached_tokens(self, lengths, seed):
        """Pages used by the pool always cover exactly the cached tokens."""
        rng = random.Random(seed)
        pool = KVCachePool(capacity_bytes=1e9, kv_bytes_per_token=10.0, page_tokens=16)
        cache = RadixCache(pool)
        uid = 0
        leases = []
        for tokens in lengths:
            uid += 1
            segment = Segment(uid=uid, tokens=tokens)
            lease = cache.acquire([segment])
            cache.insert(lease, [segment])
            leases.append(lease)
            if rng.random() < 0.5 and leases:
                cache.release(leases.pop(rng.randrange(len(leases))))
        expected_pages = sum(
            pool.pages_for(tokens) for tokens in self._node_tokens(cache)
        )
        assert pool.used_pages == expected_pages

    @staticmethod
    def _node_tokens(cache: RadixCache):
        return [node.tokens for node in cache._iter_nodes()]

    @given(
        prefix_len=st.integers(min_value=1, max_value=100),
        tail_len=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=50)
    def test_match_never_exceeds_inserted(self, prefix_len, tail_len):
        pool = KVCachePool(capacity_bytes=1e9, kv_bytes_per_token=10.0)
        cache = RadixCache(pool)
        a = Segment(uid=1, tokens=prefix_len)
        b = Segment(uid=2, tokens=tail_len)
        lease = cache.acquire([a])
        cache.insert(lease, [a])
        assert cache.match([a, b]) == prefix_len
        assert cache.match([a]) == prefix_len


class TestDistributionProperties:
    @given(
        minimum=st.integers(min_value=1, max_value=100),
        spread=st.integers(min_value=1, max_value=10_000),
        seed=st.integers(min_value=0, max_value=1_000_000),
    )
    @settings(max_examples=100)
    def test_bounded_lengths_always_in_bounds(self, minimum, spread, seed):
        maximum = minimum + spread
        mean = minimum + spread / 2
        dist = BoundedLengths(minimum=minimum, mean=mean, maximum=maximum)
        rng = random.Random(seed)
        for _ in range(20):
            assert minimum <= dist.sample(rng) <= maximum


class TestSimulatorProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
