"""Property: request conservation survives arbitrary fault plans.

Whatever faults fire — kills with or without recovery, unbounded drop
windows, hung partitions, storms — every admitted request must end in
exactly one terminal bucket (completed / dropped / shed / lost), nothing
may stay in flight after the drain, and the merged fleet summary must
agree with the router's ledger.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ChunkedPrefillServer
from repro.cluster import Fleet, FleetConfig, HealthConfig
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.gpu import A100
from repro.models import LLAMA_8B
from repro.serving.config import ServingConfig
from repro.sim import Simulator
from repro.workloads import sharegpt_workload

CFG = ServingConfig(model=LLAMA_8B, spec=A100, n_gpus=1)


@st.composite
def fault_specs(draw):
    kind = draw(st.sampled_from(sorted(FaultKind, key=lambda k: k.value)))
    at = draw(st.floats(min_value=0.0, max_value=1.5, allow_nan=False))
    duration = draw(st.sampled_from([0.0, 0.2, 0.5]))
    if kind is FaultKind.DEVICE_DEGRADE:
        magnitude = draw(st.sampled_from([0.25, 0.5, 1.0]))
    elif kind is FaultKind.NETWORK_DROP:
        magnitude = draw(st.sampled_from([0.0, 0.5, 1.0]))
    elif kind is FaultKind.NETWORK_DELAY:
        magnitude = draw(st.sampled_from([0.0, 0.01, 0.05]))
    else:
        magnitude = 0.5
    return FaultSpec(
        at=at,
        kind=kind,
        # "r9" never resolves: injector must skip it, not crash.
        target=draw(st.sampled_from([None, "r0", "r1", "r9"])),
        duration=duration,
        restart_after=draw(st.sampled_from([None, 0.5])),
        magnitude=magnitude,
    )


fault_plans = st.builds(
    FaultPlan,
    specs=st.lists(fault_specs(), max_size=4).map(tuple),
    seed=st.integers(min_value=0, max_value=2**16),
)


class TestFaultConservation:
    @given(plan=fault_plans)
    @settings(max_examples=20, deadline=None)
    def test_every_admitted_request_lands_in_one_bucket(self, plan):
        sim = Simulator()
        fleet = Fleet(
            sim,
            lambda s, c: ChunkedPrefillServer(s, c, token_budget=256),
            CFG,
            FleetConfig(
                replicas=2,
                health=HealthConfig(interval=0.25, misses_to_fail=3, restart_after=0.5),
            ),
        )
        FaultInjector(sim, fleet, plan).arm()
        workload = sharegpt_workload(8, rate=16.0, seed=51)
        fleet.submit(workload)
        sim.run(until=workload.requests[-1].arrival_time + 3600.0)

        # Bounded termination under any plan.
        assert sim.pending_productive == 0

        c = fleet.router.conservation()
        assert c["arrivals"] == len(workload)
        assert c["arrivals"] == c["completed"] + c["dropped"] + c["shed"] + c["lost"]
        assert c["queued_now"] == c["held_now"] == c["inflight_now"] == 0

        # The merged fleet view (live + retired generations) agrees with the
        # router's ledger: completions counted once, discards not at all.
        merged = fleet.summarize()
        assert merged.requests_finished == c["completed"]
