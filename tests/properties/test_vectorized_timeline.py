"""Property: a planned decode chain IS the scalar heap's event sequence.

For random batch compositions (context lengths, batch sizes, idle gaps,
start times), :func:`repro.sim.fastpath.plan_chain` must predict exactly
what the scalar simulator does when the same task goes through the real
heap: the same number of fired events, the same per-event times, the same
completion instant, and bit-equal device accounting integrals.  No
tolerance anywhere — the fast path's contract is byte-identity, so every
float must match with ``==``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import Device, ExecTask
from repro.gpu.specs import A100
from repro.models.config import LLAMA_8B
from repro.models.costs import CostModel
from repro.sim import Simulator
from repro.sim.fastpath import commit_chain, plan_chain

#: One cost model for the whole module; its per-batch-size caches make
#: repeated examples cheap, exactly as in the serving loops.
MODEL = CostModel(LLAMA_8B, n_gpus=1)

#: Decode launch overhead used by the serving configs (seconds).
LAUNCH = 0.45e-3

batch_compositions = st.lists(
    st.integers(min_value=1, max_value=8192), min_size=1, max_size=48
)
start_times = st.floats(
    min_value=0.0, max_value=30.0, allow_nan=False, allow_infinity=False
)


def _scalar_run(flops, bytes_, fixed, t0):
    """Drive the real device through the real heap; record the timeline."""
    sim = Simulator()
    device = Device(sim, A100, 1)
    completions = []
    task = ExecTask(
        flops=flops,
        bytes=bytes_,
        sm_count=device.total_sms,
        fixed_time=fixed,
        tag="prop",
        on_complete=lambda _t: completions.append(sim.now),
    )
    sim.schedule(t0, lambda: device.submit(task))
    times = []
    while sim.step():
        times.append(sim.now)
    assert len(completions) == 1
    # times[0] is the submit trigger; the rest are the chain's events.
    return {
        "event_times": times[1:],
        "completion": completions[0],
        "sm_seconds": device._sm_seconds,
        "bw_capacity_seconds": device._bw_capacity_seconds,
        "bw_bytes_served": device._bw_bytes_served,
        "last_advance": device._last_advance,
    }


@settings(max_examples=250, deadline=None)
@given(ctx_lens=batch_compositions, t0=start_times)
def test_chain_plan_equals_scalar_heap_sequence(ctx_lens, t0):
    cost = MODEL.decode_iter(ctx_lens)
    fixed = cost.comm_time + LAUNCH
    scalar = _scalar_run(cost.flops, cost.bytes, fixed, t0)

    sim = Simulator()
    device = Device(sim, A100, 1)
    sim.now = t0
    plan = plan_chain(device, cost.flops, cost.bytes, fixed, sim.now)
    assert plan is not None, "a real decode cost must be plannable"

    # The plan predicts the scalar heap's exact event sequence.
    assert plan.events == len(scalar["event_times"])
    assert plan.completion == scalar["completion"]
    assert plan.completion == scalar["event_times"][-1]
    assert plan.retire_time == scalar["last_advance"]

    # Committing replays the scalar chain's accounting bit for bit.
    commit_chain(sim, device, plan)
    assert sim.now == scalar["completion"]
    assert sim.processed_events == plan.events
    assert device._sm_seconds == scalar["sm_seconds"]
    assert device._bw_capacity_seconds == scalar["bw_capacity_seconds"]
    assert device._bw_bytes_served == scalar["bw_bytes_served"]
    assert device._last_advance == scalar["last_advance"]


@settings(max_examples=60, deadline=None)
@given(
    ctx_lens=st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=16),
    t0=start_times,
    rounds=st.integers(min_value=2, max_value=5),
)
def test_consecutive_chains_match_scalar(ctx_lens, t0, rounds):
    """A run of decode iterations — the fast loop's shape — stays exact.

    Each iteration grows every request's context by one token, exactly as
    ``_decode_fast_loop`` advances ``total_ctx`` by the batch size.
    """
    sim_s = Simulator()
    dev_s = Device(sim_s, A100, 1)
    sim_f = Simulator()
    dev_f = Device(sim_f, A100, 1)
    sim_f.now = t0

    scalar_events = 0
    clock = t0
    for i in range(rounds):
        lens = [ctx + i for ctx in ctx_lens]
        cost = MODEL.decode_iter(lens)
        fixed = cost.comm_time + LAUNCH

        completions = []
        task = ExecTask(
            flops=cost.flops,
            bytes=cost.bytes,
            sm_count=dev_s.total_sms,
            fixed_time=fixed,
            tag="prop",
            on_complete=lambda _t: completions.append(sim_s.now),
        )
        sim_s.schedule_at(clock, lambda t=task: dev_s.submit(t))
        fired = 0
        while sim_s.step():
            fired += 1
        scalar_events += fired - 1  # minus the submit trigger
        clock = completions[0]

        plan = plan_chain(dev_f, cost.flops, cost.bytes, fixed, sim_f.now)
        assert plan is not None
        commit_chain(sim_f, dev_f, plan)

    assert sim_f.now == clock
    assert sim_f.processed_events == scalar_events
    assert dev_f._sm_seconds == dev_s._sm_seconds
    assert dev_f._bw_capacity_seconds == dev_s._bw_capacity_seconds
    assert dev_f._bw_bytes_served == dev_s._bw_bytes_served
    assert dev_f._last_advance == dev_s._last_advance
