"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim import PRIORITY_EARLY, PRIORITY_LATE, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_event_fires_at_scheduled_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda lab=label: order.append(lab))
        sim.run()
        assert order == list("abcde")

    def test_priority_overrides_insertion_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("normal"))
        sim.schedule(1.0, lambda: order.append("early"), priority=PRIORITY_EARLY)
        sim.schedule(1.0, lambda: order.append("late"), priority=PRIORITY_LATE)
        sim.run()
        assert order == ["early", "normal", "late"]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_zero_delay_event_from_callback(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, lambda: seen.append("fired"))
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancelled_events_do_not_count_as_pending(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        seen = []
        later = sim.schedule(2.0, lambda: seen.append("later"))
        sim.schedule(1.0, lambda: later.cancel())
        sim.run()
        assert seen == []

    def test_heap_compacts_when_mostly_cancelled(self):
        """Cancelled events used to linger until they reached the heap head;
        a schedule/cancel loop grew the queue without bound."""
        sim = Simulator()
        for _ in range(10_000):
            sim.schedule(1.0, lambda: None).cancel()
        # All dead weight is gone from the queue, not just uncounted.
        assert len(sim._heap) < Simulator.COMPACT_MIN_SIZE
        assert sim.pending_events == 0

    def test_pending_events_is_exact_after_mixed_cancellation(self):
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
        for event in events[::2]:
            event.cancel()
        assert sim.pending_events == 250
        assert sim.pending_events == sum(
            1 for entry in sim._heap if not entry[3].cancelled
        )
        fired = []
        sim.schedule(600.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [600.0]
        assert sim.pending_events == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_fire_does_not_corrupt_count(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.step()
        event.cancel()
        assert sim.pending_events == 1


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_leaves_clock_at_last_event_when_drained(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 1.0  # no artificial idle time appended

    def test_max_events_limits_firing(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda i=i: seen.append(i))
        sim.run(max_events=3)
        assert seen == [0, 1, 2]

    def test_max_events_with_until_does_not_jump_clock(self):
        """Stopping on max_events must not clamp the clock to ``until``:
        events scheduled before ``until`` are still pending, and a resumed
        run would otherwise fire them with the clock moving backwards."""
        sim = Simulator()
        times = []
        for i in range(5):
            sim.schedule(float(i + 1), lambda: times.append(sim.now))
        sim.run(until=10.0, max_events=2)
        assert times == [1.0, 2.0]
        assert sim.now == 2.0  # not clamped to 10.0
        sim.run(until=10.0)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert times == sorted(times)  # monotone across the resume
        assert sim.now == 5.0

    def test_resume_after_max_events_keeps_time_monotone_stepwise(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=50.0, max_events=1)
        before = sim.now
        sim.step()
        assert sim.now >= before

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_processed_event_count(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.processed_events == 4

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == 2.0

    def test_chained_events_advance_clock(self):
        sim = Simulator()
        times = []

        def chain(depth: int):
            times.append(sim.now)
            if depth > 0:
                sim.schedule(1.0, lambda: chain(depth - 1))

        sim.schedule(1.0, lambda: chain(3))
        sim.run()
        assert times == [1.0, 2.0, 3.0, 4.0]
