"""Daemon events and failure-domain scopes (the fault layer's substrate)."""

import pytest

from repro.sim import INHERIT_SCOPE, Simulator


class TestDaemonEvents:
    def test_run_stops_when_only_daemons_remain(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("work"))
        sim.schedule(0.5, lambda: fired.append("daemon"), daemon=True)
        sim.schedule(2.0, lambda: fired.append("late-daemon"), daemon=True)
        sim.run()
        # The early daemon fires (productive work was still pending); the
        # late one never does — it alone cannot keep the run alive.
        assert fired == ["daemon", "work"]
        assert sim.now == 1.0
        assert sim.pending_productive == 0
        assert sim.pending_events == 1  # the unfired daemon stays queued

    def test_self_rescheduling_daemon_terminates(self):
        sim = Simulator()
        ticks = []

        def tick():
            ticks.append(sim.now)
            sim.schedule(1.0, tick, daemon=True)

        sim.schedule(1.0, tick, daemon=True)
        sim.schedule(3.5, lambda: None)
        sim.run()  # would never return if daemons counted as work
        assert ticks == [1.0, 2.0, 3.0]

    def test_two_mutual_daemons_cannot_keep_each_other_alive(self):
        # Regression for the drain-hang: two periodic monitors, each seeing
        # the other's pending event, must not ping-pong forever.
        sim = Simulator()
        counts = {"a": 0, "b": 0}

        def make(name):
            def tick():
                counts[name] += 1
                sim.schedule(1.0, tick, daemon=True)

            return tick

        sim.schedule(1.0, make("a"), daemon=True)
        sim.schedule(1.0, make("b"), daemon=True)
        sim.run()
        assert counts == {"a": 0, "b": 0}

    def test_cancelling_daemon_keeps_counts_consistent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None, daemon=True)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_productive == 1
        event.cancel()
        assert sim.pending_productive == 1
        assert sim.pending_events == 1
        sim.run()
        assert sim.now == 2.0

    def test_run_until_does_not_advance_clock_for_daemons(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(5.0, lambda: None, daemon=True)
        sim.run(until=10.0)
        # Productive work ended at t=1; the pending daemon must not make
        # the run report ten seconds of idle time.
        assert sim.now == 1.0


class TestScopes:
    def test_lexical_inheritance(self):
        sim = Simulator()
        with sim.scope("replica/r0"):
            event = sim.schedule(1.0, lambda: None)
        assert event.scope == "replica/r0"
        assert sim.schedule(1.0, lambda: None).scope is None

    def test_causal_inheritance(self):
        sim = Simulator()
        scopes = []

        def outer():
            child = sim.schedule(1.0, lambda: None)
            scopes.append(child.scope)

        with sim.scope("replica/r1"):
            sim.schedule(1.0, outer)
        sim.run()
        # The child was scheduled while r1's event fired: same scope.
        assert scopes == ["replica/r1"]

    def test_explicit_none_overrides_inheritance(self):
        sim = Simulator()
        scopes = []

        def outer():
            scopes.append(sim.schedule(1.0, lambda: None, scope=None).scope)
            scopes.append(sim.schedule(1.0, lambda: None, scope=INHERIT_SCOPE).scope)
            scopes.append(sim.schedule(1.0, lambda: None, scope="other").scope)

        with sim.scope("replica/r2"):
            sim.schedule(1.0, outer)
        sim.run()
        assert scopes == [None, "replica/r2", "other"]

    def test_cancel_scope_kills_whole_cascade(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(1.0, lambda: chain(depth + 1))

        with sim.scope("replica/r0"):
            sim.schedule(1.0, lambda: chain(0))
        sim.schedule(2.5, lambda: sim.cancel_scope("replica/r0"), scope=None)
        sim.run()
        # Kill lands at t=2.5: links at t=1 and t=2 fired, the rest died.
        assert fired == [0, 1]

    def test_cancel_scope_returns_count_and_spares_other_scopes(self):
        sim = Simulator()
        with sim.scope("a"):
            sim.schedule(1.0, lambda: None)
            sim.schedule(2.0, lambda: None)
        with sim.scope("b"):
            survivor = sim.schedule(1.0, lambda: None)
        assert sim.cancel_scope("a") == 2
        assert sim.cancel_scope("a") == 0  # idempotent
        assert not survivor.cancelled
        assert sim.pending_productive == 1

    def test_scope_restored_after_event_fires(self):
        sim = Simulator()
        with sim.scope("replica/r0"):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.current_scope is None

    def test_exception_in_scoped_block_restores_scope(self):
        sim = Simulator()
        with pytest.raises(RuntimeError):
            with sim.scope("x"):
                raise RuntimeError("boom")
        assert sim.current_scope is None
