"""Differential equivalence: decode fast path vs scalar reference.

Every canonical perf scenario runs twice — elision on, elision off — and
the full result payloads must be byte-identical: same summaries, same
utilisation integrals, same event counts, same queue high-water marks.
The golden tests in ``tests/bench/test_perf.py`` pin the *values*; this
suite pins the *contract* that produced them: the fast path is an
optimisation, never a model change.

A second layer diffs the per-request metric streams (every token gap, in
emission order, tapped through a metrics sink) so a compensating error —
two deviations cancelling in an aggregate — cannot hide.

A third layer runs the sharded simulator against the flat one: the merged
pop order is the same total order, so results must again match byte for
byte.
"""

import pytest

from repro.baselines import ChunkedPrefillServer
from repro.bench.perf import SCENARIOS, _digest
from repro.bench.runner import run_system
from repro.bench.sinks import ListSink
from repro.gpu.specs import A100
from repro.models.config import LLAMA_8B
from repro.serving.config import ServingConfig
from repro.sim import ShardedSimulator, fastpath
from repro.workloads import sharegpt_workload

#: Same scale as the golden fingerprints: small enough to run every
#: scenario twice, large enough to exercise batching, caching and faults.
SCALE = 0.05


def _run_scenario(name: str):
    payload, extras = SCENARIOS[name](SCALE)
    return (
        _digest(payload),
        int(extras.get("events_processed", 0)),
        int(extras.get("peak_event_queue", 0)),
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_fastpath_equivalence(name):
    with fastpath.enabled():
        fast = _run_scenario(name)
    with fastpath.disabled():
        scalar = _run_scenario(name)
    # Fingerprint, processed-event count (elided events are charged), and
    # queue high-water mark all byte-identical.
    assert fast == scalar


class _StreamedRun:
    """One single-system run with the per-token metric stream tapped."""

    def __init__(self, sim_factory=None):
        self.sink = ListSink()

        def factory(sim, cfg):
            server = ChunkedPrefillServer(sim, cfg, token_budget=256)
            server.metrics.sink = self.sink
            return server

        cfg = ServingConfig(model=LLAMA_8B, spec=A100, n_gpus=1)
        workload = sharegpt_workload(40, rate=6.0, seed=13)
        self.result = run_system(factory, cfg, workload, sim_factory=sim_factory)


class TestMetricStreamEquivalence:
    def test_per_request_token_streams_identical(self):
        with fastpath.enabled():
            fast = _StreamedRun()
        with fastpath.disabled():
            scalar = _StreamedRun()
        assert len(fast.sink.records) > 100
        # The full stream — request identity, emission time, exact gap
        # floats, emission order — not just aggregates.
        assert fast.sink.records == scalar.sink.records
        assert fast.result.summary.as_dict() == scalar.result.summary.as_dict()

    def test_streaming_tap_does_not_perturb_results(self):
        with fastpath.enabled():
            tapped = _StreamedRun()

            def factory(sim, cfg):
                return ChunkedPrefillServer(sim, cfg, token_budget=256)

            cfg = ServingConfig(model=LLAMA_8B, spec=A100, n_gpus=1)
            workload = sharegpt_workload(40, rate=6.0, seed=13)
            untapped = run_system(factory, cfg, workload)
        assert tapped.result.summary.as_dict() == untapped.summary.as_dict()


class TestShardedEquivalence:
    #: Scenarios the sharded merge is exercised against end to end; chaos
    #: covers scope cancellation (replica kills) against the sub-heaps.
    NAMES = ("single_goodput", "fleet_4_replicas", "chaos_4_replicas")

    @pytest.mark.parametrize("name", NAMES)
    def test_sharded_matches_flat(self, name):
        import repro.sim.shard as shard

        with fastpath.enabled():
            flat = _run_scenario(name)
            previous = shard.set_sharding_enabled(True)
            try:
                sharded = _run_scenario(name)
            finally:
                shard.set_sharding_enabled(previous)
        assert sharded == flat

    def test_sharded_metric_streams_identical(self):
        with fastpath.enabled():
            flat = _StreamedRun()
            sharded = _StreamedRun(sim_factory=ShardedSimulator)
        assert sharded.sink.records == flat.sink.records
