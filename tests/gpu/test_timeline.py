"""Unit tests for the timeline tracer (Nsight-like span capture)."""

import pytest

from repro.gpu import A100, Device, Stream, Work
from repro.gpu.timeline import Span, Timeline, attach_timeline
from repro.sim import Simulator


class TestSpans:
    def test_duration(self):
        assert Span("s", "k", 1.0, 3.0).duration == 2.0

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            Span("s", "k", 2.0, 1.0)


class TestTimeline:
    def make(self) -> Timeline:
        timeline = Timeline()
        timeline.record("decode", "iter", 0.0, 1.0)
        timeline.record("decode", "iter", 2.0, 3.0)
        timeline.record("prefill", "layer", 0.5, 2.5)
        return timeline

    def test_streams_in_order(self):
        assert self.make().streams() == ["decode", "prefill"]

    def test_busy_time_merges_overlaps(self):
        timeline = Timeline()
        timeline.record("s", "a", 0.0, 2.0)
        timeline.record("s", "b", 1.0, 3.0)
        assert timeline.busy_time("s") == pytest.approx(3.0)

    def test_bubbles_in_window(self):
        timeline = self.make()
        gaps = timeline.bubbles("decode", 0.0, 3.0)
        assert gaps == [(1.0, 2.0)]

    def test_bubbles_include_leading_and_trailing_idle(self):
        timeline = self.make()
        gaps = timeline.bubbles("prefill", 0.0, 3.0)
        assert gaps == [(0.0, 0.5), (2.5, 3.0)]

    def test_bubble_ratio(self):
        timeline = self.make()
        assert timeline.bubble_ratio("decode", 0.0, 3.0) == pytest.approx(1.0 / 3.0)

    def test_mean_bubble_ratio(self):
        timeline = self.make()
        expected = (1.0 / 3.0 + 1.0 / 3.0) / 2.0
        assert timeline.mean_bubble_ratio(0.0, 3.0) == pytest.approx(expected)

    def test_empty_timeline(self):
        timeline = Timeline()
        assert timeline.mean_bubble_ratio(0.0, 1.0) == 0.0
        assert timeline.render() == "(empty timeline)"

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            self.make().bubbles("decode", 3.0, 1.0)

    def test_render_shows_lanes(self):
        text = self.make().render(width=30)
        assert "decode" in text and "prefill" in text
        assert "#" in text


class TestAttach:
    def test_traces_real_stream_execution(self):
        sim = Simulator()
        device = Device(sim, A100)
        decode = Stream(device, 48, name="decode-gc")
        prefill = Stream(device, 60, name="prefill-gc")
        timeline = attach_timeline(decode, prefill)

        decode.submit(Work(flops=device.compute_rate(48) * 0.1, bytes=0.0, tag="iter"))
        prefill.submit(Work(flops=device.compute_rate(60) * 0.2, bytes=0.0, tag="layers"))
        sim.run()

        assert len(timeline.spans) == 2
        assert timeline.busy_time("decode-gc") == pytest.approx(0.1, rel=0.05)
        assert timeline.busy_time("prefill-gc") == pytest.approx(0.2, rel=0.05)
        # Concurrent execution: decode finishes during prefill's span.
        assert timeline.bubble_ratio("decode-gc", 0.0, 0.2) == pytest.approx(0.5, rel=0.1)
