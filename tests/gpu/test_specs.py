"""Unit tests for GPU specifications and partition options."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import A100, H100, H200, H200_NVL, L40S, SPECS_BY_NAME, decode_partition_options


class TestSpecs:
    def test_a100_parameters(self):
        assert A100.sms == 108
        assert A100.mem_bytes == 80 * 2**30
        assert A100.peak_flops == pytest.approx(312e12)

    def test_h100_parameters(self):
        assert H100.sms == 132
        assert H100.peak_flops > A100.peak_flops
        assert H100.mem_bandwidth > A100.mem_bandwidth

    def test_h200_has_more_memory_and_bandwidth_than_h100(self):
        assert H200.mem_bytes > H100.mem_bytes
        assert H200.mem_bandwidth > H100.mem_bandwidth

    def test_registry_contains_all_specs(self):
        for spec in (A100, H100, H200, H200_NVL, L40S):
            assert SPECS_BY_NAME[spec.name] is spec

    def test_l40s_is_cheap_and_bandwidth_poor(self):
        assert L40S.sms == 142
        assert L40S.sms % L40S.sm_granularity != 0  # the odd-granule SKU
        assert L40S.price_per_hour < A100.price_per_hour
        assert L40S.mem_bandwidth < A100.mem_bandwidth
        # Compute per dollar is the L40S's selling point over its own
        # bandwidth per dollar being the weakest of the fleet SKUs.
        assert L40S.peak_flops / L40S.price_per_hour > 0

    def test_every_spec_has_positive_cost_model(self):
        for spec in SPECS_BY_NAME.values():
            assert spec.price_per_hour > 0
            assert spec.tdp_watts > 0

    def test_price_ordering_tracks_capability(self):
        assert (
            L40S.price_per_hour
            < A100.price_per_hour
            < H100.price_per_hour
            < H200.price_per_hour
        )

    def test_effective_rates_discounted(self):
        assert A100.effective_flops < A100.peak_flops
        assert A100.effective_bandwidth < A100.mem_bandwidth

    def test_with_overrides_returns_modified_copy(self):
        fat = A100.with_overrides(mem_bytes=160 * 2**30)
        assert fat.mem_bytes == 160 * 2**30
        assert A100.mem_bytes == 80 * 2**30
        assert fat.sms == A100.sms


class TestPartitionOptions:
    def test_a100_has_six_configurations(self):
        """The paper: 16-SM granularity yields 6 configurations on A100."""
        options = decode_partition_options(A100)
        assert options == [16, 32, 48, 64, 80, 96]

    def test_h100_has_seven_configurations(self):
        """...and 7 on H100."""
        options = decode_partition_options(H100)
        assert options == [16, 32, 48, 64, 80, 96, 112]

    def test_options_are_multiples_of_granularity(self):
        for spec in (A100, H100, H200):
            for sm in decode_partition_options(spec):
                assert sm % spec.sm_granularity == 0

    def test_every_option_leaves_prefill_sms(self):
        for spec in (A100, H100, H200):
            for sm in decode_partition_options(spec):
                assert spec.sms - sm >= spec.sm_granularity // 2

    def test_l40s_non_granule_sm_count_walks_the_ladder(self):
        # 142 SMs is not a multiple of 16; the ladder must still be
        # non-empty and every rung must leave prefill SMs.
        options = decode_partition_options(L40S)
        assert options == [16, 32, 48, 64, 80, 96, 112, 128]
        assert all(0 < sm < L40S.sms for sm in options)

    def test_sub_two_granule_gpu_gets_midpoint_fallback(self):
        # 16..23 SMs: the granule walk is empty (16 reachable only when
        # 8+ SMs remain for prefill); the old arithmetic silently returned
        # no options at all.
        for sms in range(16, 24):
            tiny = A100.with_overrides(sms=sms)
            options = decode_partition_options(tiny)
            assert options == [sms // 2]

    def test_single_sm_gpu_is_rejected(self):
        with pytest.raises(ValueError):
            decode_partition_options(A100.with_overrides(sms=1))

    @given(sms=st.integers(min_value=16, max_value=256))
    @settings(max_examples=120, deadline=None)
    def test_options_valid_for_any_sm_count(self, sms):
        spec = A100.with_overrides(sms=sms)
        options = decode_partition_options(spec)
        assert options, f"no decode partitions for {sms} SMs"
        assert options == sorted(set(options))
        for sm in options:
            assert 0 < sm < sms  # decode and prefill both get SMs
