"""Unit tests for GPU specifications and partition options."""

import pytest

from repro.gpu import A100, H100, H200, H200_NVL, SPECS_BY_NAME, decode_partition_options


class TestSpecs:
    def test_a100_parameters(self):
        assert A100.sms == 108
        assert A100.mem_bytes == 80 * 2**30
        assert A100.peak_flops == pytest.approx(312e12)

    def test_h100_parameters(self):
        assert H100.sms == 132
        assert H100.peak_flops > A100.peak_flops
        assert H100.mem_bandwidth > A100.mem_bandwidth

    def test_h200_has_more_memory_and_bandwidth_than_h100(self):
        assert H200.mem_bytes > H100.mem_bytes
        assert H200.mem_bandwidth > H100.mem_bandwidth

    def test_registry_contains_all_specs(self):
        for spec in (A100, H100, H200, H200_NVL):
            assert SPECS_BY_NAME[spec.name] is spec

    def test_effective_rates_discounted(self):
        assert A100.effective_flops < A100.peak_flops
        assert A100.effective_bandwidth < A100.mem_bandwidth

    def test_with_overrides_returns_modified_copy(self):
        fat = A100.with_overrides(mem_bytes=160 * 2**30)
        assert fat.mem_bytes == 160 * 2**30
        assert A100.mem_bytes == 80 * 2**30
        assert fat.sms == A100.sms


class TestPartitionOptions:
    def test_a100_has_six_configurations(self):
        """The paper: 16-SM granularity yields 6 configurations on A100."""
        options = decode_partition_options(A100)
        assert options == [16, 32, 48, 64, 80, 96]

    def test_h100_has_seven_configurations(self):
        """...and 7 on H100."""
        options = decode_partition_options(H100)
        assert options == [16, 32, 48, 64, 80, 96, 112]

    def test_options_are_multiples_of_granularity(self):
        for spec in (A100, H100, H200):
            for sm in decode_partition_options(spec):
                assert sm % spec.sm_granularity == 0

    def test_every_option_leaves_prefill_sms(self):
        for spec in (A100, H100, H200):
            for sm in decode_partition_options(spec):
                assert spec.sms - sm >= spec.sm_granularity // 2
