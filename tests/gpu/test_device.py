"""Unit tests for the fluid-flow device: rooflines, contention, memory."""


import pytest

from repro.gpu import A100, H100, Device, ExecTask, OutOfMemoryError
from repro.sim import Simulator


def make_device(n_gpus: int = 1, spec=A100):
    sim = Simulator()
    return sim, Device(sim, spec, n_gpus=n_gpus)


def run_task(sim, device, **kwargs) -> float:
    done = {}
    task = ExecTask(on_complete=lambda t: done.setdefault("t", t), **kwargs)
    device.submit(task)
    sim.run()
    return done["t"]


class TestSoloExecution:
    def test_compute_bound_task_duration(self):
        sim, device = make_device()
        flops = device.compute_rate(device.total_sms) * 0.5  # exactly 0.5 s
        elapsed = run_task(sim, device, flops=flops, bytes=1.0, sm_count=device.total_sms)
        assert elapsed == pytest.approx(0.5, rel=1e-6)

    def test_memory_bound_task_duration(self):
        sim, device = make_device()
        nbytes = device.effective_bandwidth * 0.25
        elapsed = run_task(sim, device, flops=1.0, bytes=nbytes, sm_count=device.total_sms)
        assert elapsed == pytest.approx(0.25, rel=1e-6)

    def test_roofline_takes_maximum(self):
        sim, device = make_device()
        flops = device.compute_rate(device.total_sms) * 0.4
        nbytes = device.effective_bandwidth * 0.1
        elapsed = run_task(sim, device, flops=flops, bytes=nbytes, sm_count=device.total_sms)
        assert elapsed == pytest.approx(0.4, rel=1e-6)

    def test_fixed_time_appends(self):
        sim, device = make_device()
        flops = device.compute_rate(device.total_sms) * 0.1
        elapsed = run_task(
            sim, device, flops=flops, bytes=0.0, sm_count=device.total_sms, fixed_time=0.05
        )
        assert elapsed == pytest.approx(0.15, rel=1e-6)

    def test_zero_work_task_completes_after_fixed_time(self):
        sim, device = make_device()
        elapsed = run_task(sim, device, flops=0.0, bytes=0.0, sm_count=10, fixed_time=0.01)
        assert elapsed == pytest.approx(0.01, rel=1e-6)

    def test_compute_scales_with_sm_count(self):
        sim, device = make_device()
        flops = device.compute_rate(device.total_sms) * 0.1
        full = ExecTask(flops=flops, bytes=0.0, sm_count=device.total_sms)
        half = ExecTask(flops=flops, bytes=0.0, sm_count=device.total_sms // 2)
        assert half.solo_time(device) == pytest.approx(2 * full.solo_time(device), rel=0.02)

    def test_max_bandwidth_caps_memory_rate(self):
        sim, device = make_device()
        nbytes = device.effective_bandwidth * 0.1
        elapsed = run_task(
            sim,
            device,
            flops=1.0,
            bytes=nbytes,
            sm_count=device.total_sms,
            max_bandwidth=device.effective_bandwidth / 2,
        )
        assert elapsed == pytest.approx(0.2, rel=1e-6)

    def test_tp_group_aggregates_resources(self):
        sim1, one = make_device(n_gpus=1)
        sim8, eight = make_device(n_gpus=8)
        assert eight.effective_bandwidth == pytest.approx(8 * one.effective_bandwidth)
        assert eight.compute_rate(10) == pytest.approx(8 * one.compute_rate(10))

    def test_invalid_sm_count_rejected(self):
        _, device = make_device()
        with pytest.raises(ValueError):
            device.compute_rate(0)
        with pytest.raises(ValueError):
            device.compute_rate(device.total_sms + 1)


class TestContention:
    def test_memory_bound_corunner_slows_down(self):
        """A memory-bound task co-running with a busy partition slows by a
        bounded factor (the paper's Fig. 11 effect)."""
        sim, device = make_device(n_gpus=8)
        solo_sim, solo_device = make_device(n_gpus=8)
        nbytes = solo_device.effective_bandwidth * 0.05
        solo = run_task(solo_sim, solo_device, flops=1.0, bytes=nbytes, sm_count=48)

        done = {}
        # A compute-bound co-runner (prefill-like): modest bandwidth demand.
        big_flops = device.compute_rate(60) * 0.5
        big_bytes = device.effective_bandwidth * 0.05
        device.submit(ExecTask(flops=big_flops, bytes=big_bytes, sm_count=60))
        device.submit(
            ExecTask(
                flops=1.0,
                bytes=nbytes,
                sm_count=48,
                on_complete=lambda t: done.setdefault("t", t),
            )
        )
        sim.run()
        slowdown = done["t"] / solo
        assert 1.0 <= slowdown <= 1.45

    def test_compute_bound_task_absorbs_interference(self):
        """Compute-bound tasks barely slow down under co-running."""
        sim, device = make_device(n_gpus=8)
        flops = device.compute_rate(48) * 0.2
        solo = ExecTask(flops=flops, bytes=1e6, sm_count=48).solo_time(device)
        done = {}
        device.submit(ExecTask(flops=device.compute_rate(60) * 0.3, bytes=1e9, sm_count=60))
        device.submit(
            ExecTask(
                flops=flops, bytes=1e6, sm_count=48, on_complete=lambda t: done.setdefault("t", t)
            )
        )
        sim.run()
        assert done["t"] <= solo * 1.05

    def test_oversubscribed_sms_share_compute(self):
        """Two full-SM tasks (plain streams) each run at ~half speed."""
        sim, device = make_device()
        flops = device.compute_rate(device.total_sms) * 0.1
        done = {}
        for name in ("a", "b"):
            device.submit(
                ExecTask(
                    flops=flops,
                    bytes=0.0,
                    sm_count=device.total_sms,
                    on_complete=lambda t, n=name: done.setdefault(n, t),
                )
            )
        sim.run()
        assert done["a"] == pytest.approx(0.2, rel=1e-6)
        assert done["b"] == pytest.approx(0.2, rel=1e-6)

    def test_bandwidth_shared_fairly_between_memory_bound_tasks(self):
        sim, device = make_device()
        nbytes = device.effective_bandwidth * 0.1
        done = {}
        for name in ("a", "b"):
            device.submit(
                ExecTask(
                    flops=1.0,
                    bytes=nbytes,
                    sm_count=20,
                    on_complete=lambda t, n=name: done.setdefault(n, t),
                )
            )
        sim.run()
        # Each gets ~half bandwidth (interference makes it slightly worse).
        assert done["a"] == pytest.approx(done["b"], rel=1e-6)
        assert 0.2 <= done["a"] <= 0.25

    def test_h100_contention_stronger_than_a100(self):
        assert H100.contention_kappa > A100.contention_kappa


class TestMemoryAccounting:
    def test_alloc_and_free(self):
        _, device = make_device()
        device.alloc_memory(10 * 2**30)
        assert device.mem_free == pytest.approx(device.mem_capacity - 10 * 2**30)
        device.free_memory(10 * 2**30)
        assert device.mem_free == pytest.approx(device.mem_capacity)

    def test_over_allocation_raises(self):
        _, device = make_device()
        with pytest.raises(OutOfMemoryError):
            device.alloc_memory(device.mem_capacity + 1)

    def test_negative_alloc_rejected(self):
        _, device = make_device()
        with pytest.raises(ValueError):
            device.alloc_memory(-1)

    def test_free_never_goes_negative(self):
        _, device = make_device()
        device.alloc_memory(100)
        device.free_memory(1e12)
        assert device.mem_allocated == 0.0


class TestStall:
    def test_zero_work_task_does_not_complete_while_stalled(self):
        """A hung partition must not emit completions — not even for tasks
        with no compute or memory work (regression: ``submit`` used to
        finish them immediately, so a dead replica made visible progress)."""
        sim, device = make_device()
        done = []
        device.stall()
        device.submit(ExecTask(flops=0.0, bytes=0.0, sm_count=10, on_complete=done.append))
        sim.run()
        assert done == []  # stalled: no completion may surface
        sim.schedule(3.0, device.unstall)
        sim.run()
        assert done == [3.0]  # retires exactly when the stall clears

    def test_stall_freezes_and_resumes_in_flight_work(self):
        sim, device = make_device()
        done = []
        flops = device.compute_rate(device.total_sms) * 1.0
        device.submit(
            ExecTask(flops=flops, bytes=0.0, sm_count=device.total_sms, on_complete=done.append)
        )
        sim.schedule(0.5, lambda: device.stall(duration=2.0))
        sim.run()
        # 0.5 s of work, 2 s frozen, then the remaining 0.5 s.
        assert done and done[0] == pytest.approx(3.0, rel=1e-6)


class TestUtilization:
    def test_sm_utilization_tracks_busy_fraction(self):
        sim, device = make_device()
        flops = device.compute_rate(device.total_sms // 2) * 1.0
        run_task(sim, device, flops=flops, bytes=0.0, sm_count=device.total_sms // 2)
        sim.schedule(1.0, lambda: None)  # extend the window to t=2
        sim.run()
        util = device.sm_utilization()
        # Half the SMs for half the window.
        assert util == pytest.approx(0.25, rel=0.05)

    def test_reset_accounting(self):
        sim, device = make_device()
        run_task(sim, device, flops=device.compute_rate(50), bytes=0.0, sm_count=50)
        device.reset_accounting()
        assert device.sm_utilization() == 0.0

    def test_memory_tail_holds_no_sms(self):
        """A task whose compute finished long before its memory traffic
        streams the tail without occupying SMs (regression: the integral
        used to accrue sm_count * dt for the whole task lifetime)."""
        sim, device = make_device()
        half = device.total_sms // 2
        flops = device.compute_rate(half) * 0.2  # compute done at t=0.2
        nbytes = device.effective_bandwidth * 1.0  # memory done at t=1.0
        run_task(sim, device, flops=flops, bytes=nbytes, sm_count=half)
        util = device.sm_utilization()
        # Half the SMs for 0.2 s of a 1.0 s window = 10 %, not 50 %.
        assert util == pytest.approx(0.5 * 0.2, rel=0.05)

    def test_bandwidth_utilization_capped_under_mid_window_degradation(self):
        """Degrading bandwidth mid-window must not push utilisation above
        100 % (regression: the denominator used the *current* degraded
        rate for the whole elapsed window)."""
        sim, device = make_device()
        full_bw = device.effective_bandwidth
        nbytes = full_bw * 1.0  # 1 s of traffic at full rate
        done = {}
        device.submit(
            ExecTask(
                flops=1.0,
                bytes=nbytes,
                sm_count=device.total_sms,
                on_complete=lambda t: done.setdefault("t", t),
            )
        )
        sim.schedule(0.5, lambda: device.set_degradation(bandwidth_factor=0.25))
        sim.run()
        util = device.bandwidth_utilization()
        assert util <= 1.0 + 1e-9
        # Served 0.5 + 0.5 of capacity-integral (0.5*1.0 + 2.0*0.25) -> 100 %.
        assert util == pytest.approx(1.0, rel=1e-6)
        assert done["t"] == pytest.approx(2.5, rel=1e-6)

    def test_bandwidth_utilization_integrates_capacity_piecewise(self):
        """After recovery the denominator keeps the degraded interval's
        (smaller) capacity contribution instead of re-pricing the window."""
        sim, device = make_device()
        full_bw = device.effective_bandwidth
        device.set_degradation(bandwidth_factor=0.5)
        nbytes = full_bw * 0.5  # 1 s of traffic at the degraded rate
        done = {}
        device.submit(
            ExecTask(
                flops=1.0,
                bytes=nbytes,
                sm_count=device.total_sms,
                on_complete=lambda t: done.setdefault("t", t),
            )
        )
        sim.run()
        assert done["t"] == pytest.approx(1.0, rel=1e-6)
        assert device.bandwidth_utilization() == pytest.approx(1.0, rel=1e-6)
