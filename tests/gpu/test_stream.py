"""Unit tests for streams (green contexts), host thread and launch model."""

from dataclasses import replace

import pytest

from repro.gpu import A100, Device, HostThread, LaunchModel, Stream, Work
from repro.gpu.launch import KERNELS_FIXED, KERNELS_PER_LAYER, GraphMemoryModel
from repro.sim import Simulator


def make_stream(sm_count: int = 54):
    sim = Simulator()
    device = Device(sim, A100)
    return sim, device, Stream(device, sm_count)


def timed_work(device: Device, sm_count: int, seconds: float) -> Work:
    return Work(flops=device.compute_rate(sm_count) * seconds, bytes=0.0)


class TestStream:
    def test_work_executes_on_partition(self):
        sim, device, stream = make_stream(54)
        handle = stream.submit(timed_work(device, 54, 0.1))
        sim.run()
        assert handle.done
        assert handle.completion_time == pytest.approx(0.1, rel=1e-6)

    def test_serial_execution_order(self):
        sim, device, stream = make_stream(54)
        first = stream.submit(timed_work(device, 54, 0.1))
        second = stream.submit(timed_work(device, 54, 0.1))
        sim.run()
        assert first.completion_time == pytest.approx(0.1, rel=1e-6)
        assert second.completion_time == pytest.approx(0.2, rel=1e-6)

    def test_query_is_nonblocking(self):
        sim, device, stream = make_stream(54)
        handle = stream.submit(timed_work(device, 54, 0.1))
        assert handle.query() is False
        sim.run()
        assert handle.query() is True

    def test_callback_fires_immediately_if_done(self):
        sim, device, stream = make_stream(54)
        handle = stream.submit(timed_work(device, 54, 0.05))
        sim.run()
        seen = []
        handle.on_complete(lambda t: seen.append(t))
        assert seen == [handle.completion_time]

    def test_resize_changes_partition_after_queued_work(self):
        sim, device, stream = make_stream(54)
        stream.submit(timed_work(device, 54, 0.1))
        stream.resize(27)
        handle = stream.submit(timed_work(device, 27, 0.1))
        sim.run()
        assert stream.sm_count == 27
        assert handle.completion_time == pytest.approx(
            0.1 + A100.greenctx_reconfig_time + 0.1, rel=1e-4
        )

    def test_resize_validation(self):
        _, device, stream = make_stream()
        with pytest.raises(ValueError):
            stream.resize(0)
        with pytest.raises(ValueError):
            stream.resize(device.total_sms + 1)

    def test_barrier_completes_after_queued_work(self):
        sim, device, stream = make_stream(54)
        stream.submit(timed_work(device, 54, 0.2))
        barrier = stream.barrier()
        sim.run()
        assert barrier.completion_time == pytest.approx(0.2, rel=1e-6)

    def test_barrier_on_idle_stream_completes_now(self):
        sim, device, stream = make_stream(54)
        barrier = stream.barrier()
        assert barrier.done

    def test_bubble_ratio_counts_idle_time(self):
        sim, device, stream = make_stream(54)
        stream.submit(timed_work(device, 54, 0.5))
        sim.schedule(1.0, lambda: None)  # extend the window to t=1
        sim.run()
        assert stream.bubble_ratio() == pytest.approx(0.5, rel=0.02)

    def test_bubble_ratio_zero_when_always_busy(self):
        sim, device, stream = make_stream(54)
        stream.submit(timed_work(device, 54, 1.0))
        sim.run()
        assert stream.bubble_ratio() == pytest.approx(0.0, abs=1e-6)

    def test_resize_counts_as_busy_not_bubble(self):
        """A green-context resize occupies the stream (it is a stream sync);
        it used to be counted as bubble because the resize path never set
        the op-start marker, inflating the §4.4.2 ratio on re-partitions."""
        spec = replace(A100, greenctx_reconfig_time=0.05)
        sim = Simulator()
        device = Device(sim, spec)
        stream = Stream(device, 54)
        stream.submit(timed_work(device, 54, 0.1))
        stream.resize(27)
        sim.run()
        # Window is 0.15 s: 0.1 s of work + 0.05 s of resize, zero idle.
        assert sim.now == pytest.approx(0.15, rel=1e-6)
        assert stream.bubble_ratio() == pytest.approx(0.0, abs=1e-6)

    def test_idle_time_around_resize_still_counts_as_bubble(self):
        spec = replace(A100, greenctx_reconfig_time=0.05)
        sim = Simulator()
        device = Device(sim, spec)
        stream = Stream(device, 54)
        stream.submit(timed_work(device, 54, 0.1))
        sim.schedule(0.2, lambda: stream.resize(27))
        sim.run()
        # Busy 0.1 (work) + 0.05 (resize) out of a 0.25 s window.
        assert stream.bubble_ratio() == pytest.approx(0.1 / 0.25, rel=1e-4)


class TestHostThread:
    def test_serializes_operations(self):
        sim = Simulator()
        host = HostThread(sim)
        times = []
        host.enqueue(0.01, lambda: times.append(sim.now))
        host.enqueue(0.02, lambda: times.append(sim.now))
        sim.run()
        assert times[0] == pytest.approx(0.01)
        assert times[1] == pytest.approx(0.03)

    def test_busy_flag(self):
        sim = Simulator()
        host = HostThread(sim)
        host.enqueue(0.5, lambda: None)
        assert host.busy
        sim.run()
        assert not host.busy

    def test_busy_seconds_accumulate(self):
        sim = Simulator()
        host = HostThread(sim)
        host.enqueue(0.1, lambda: None)
        host.enqueue(0.2, lambda: None)
        sim.run()
        assert host.busy_seconds == pytest.approx(0.3)

    def test_negative_duration_rejected(self):
        host = HostThread(Simulator())
        with pytest.raises(ValueError):
            host.enqueue(-1.0, lambda: None)


class TestLaunchModel:
    def test_full_prefill_launch_is_tens_of_ms_for_70b(self):
        """The paper: launching a prefill phase takes tens of milliseconds."""
        launch = LaunchModel()
        assert 0.005 <= launch.full_prefill_launch(80) <= 0.05

    def test_layerwise_launch_is_about_10ms_for_70b(self):
        """The paper: piecewise graphs still incur ~10 ms for Llama-70B."""
        launch = LaunchModel()
        assert 0.008 <= launch.layerwise_prefill_launch(80) <= 0.012

    def test_decode_launch_under_half_millisecond(self):
        """The paper: launching a decode iteration takes < 0.5 ms."""
        assert LaunchModel().decode_launch() < 0.5e-3

    def test_kernel_count_scales_with_layers(self):
        launch = LaunchModel()
        assert launch.full_prefill_launch(80) == pytest.approx(
            (80 * KERNELS_PER_LAYER + KERNELS_FIXED) * launch.kernel_launch_time
        )

    def test_graph_memory_scales_with_configs(self):
        graphs = GraphMemoryModel()
        single = graphs.baseline_graphs_bytes(20)
        multi = graphs.decode_graphs_bytes(20, 6)
        assert multi == pytest.approx(6 * single)

    def test_greenctx_pool_is_4mb(self):
        """The paper: creating a group of green contexts requires only 4 MB."""
        assert GraphMemoryModel().greenctx_pool_bytes == 4 * 2**20
