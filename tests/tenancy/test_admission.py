"""Tests for decision reasons and tiered brownout admission.

Covers the satellite requirement: base-controller QUEUE/SHED reasons at
the capacity and TTFT-divergence boundaries, plus the tiered ordering —
batch sheds while interactive still admits.
"""

import pytest

from repro.cluster import AdmissionConfig, AdmissionController, Decision
from repro.kvcache import new_segment
from repro.tenancy import (
    TIER_BATCH,
    TIER_INTERACTIVE,
    TIER_STANDARD,
    TenancyConfig,
    TieredAdmissionController,
)
from repro.workloads import Request


class StubFleet:
    """Replica-count + outstanding view the controller reads."""

    def __init__(self, routable=2, outstanding=0):
        self._routable = [object()] * routable
        self._outstanding = outstanding

    def routable_replicas(self):
        return self._routable

    def total_outstanding(self):
        return self._outstanding

    def degraded(self):
        return False


def make_request(tier=None, tenant=None) -> Request:
    return Request(
        session_id=0,
        turn_index=0,
        arrival_time=0.0,
        history=[],
        new_input=new_segment(100),
        output_tokens=5,
        tenant=tenant,
        tier=tier,
    )


class TestBaseReasons:
    def test_admit_reason_is_capacity(self):
        controller = AdmissionController(AdmissionConfig(max_outstanding_per_replica=4))
        assert controller.decide(StubFleet(outstanding=0)) is Decision.ADMIT
        assert controller.last_reason == "capacity"

    def test_queue_at_capacity_boundary(self):
        controller = AdmissionController(AdmissionConfig(max_outstanding_per_replica=4))
        # One below the fleet budget (2 replicas x 4): still admits.
        assert controller.decide(StubFleet(outstanding=7)) is Decision.ADMIT
        # Exactly at the budget: queues, attributed to capacity.
        assert controller.decide(StubFleet(outstanding=8)) is Decision.QUEUE
        assert controller.last_reason == "capacity"

    def test_shed_at_capacity_boundary(self):
        controller = AdmissionController(
            AdmissionConfig(max_outstanding_per_replica=4, mode="shed")
        )
        assert controller.decide(StubFleet(outstanding=8)) is Decision.SHED
        assert controller.last_reason == "capacity"

    def test_ttft_divergence_reason(self):
        controller = AdmissionController(
            AdmissionConfig(max_outstanding_per_replica=64, ttft_shed_threshold=1.0)
        )
        for _ in range(7):
            controller.observe_ttft(5.0)
        # One sample short of the minimum: the signal is not trusted yet.
        assert controller.decide(StubFleet()) is Decision.ADMIT
        controller.observe_ttft(5.0)
        assert controller.decide(StubFleet()) is Decision.SHED
        assert controller.last_reason == "ttft-divergence"


class TestTieredBrownout:
    def controller(self, fractions=(0.5, 0.8), capacity=4, **cfg_kwargs):
        return TieredAdmissionController(
            AdmissionConfig(max_outstanding_per_replica=capacity, **cfg_kwargs),
            tenancy=TenancyConfig(),
            tier_fractions=fractions,
        )

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            self.controller(fractions=(0.0, 0.5))
        with pytest.raises(ValueError):
            self.controller(fractions=(0.5, 1.5))
        with pytest.raises(ValueError):
            self.controller(fractions=(0.8, 0.5))  # decreasing with rank

    def test_batch_sheds_first_interactive_keeps_admitting(self):
        """The tiered ordering: at 50% occupancy batch browns out while
        standard and interactive are still admitted."""
        controller = self.controller()  # fleet budget 2x4=8; batch shed at 4
        fleet = StubFleet(outstanding=4)
        assert controller.decide(fleet, make_request(TIER_BATCH)) is Decision.SHED
        assert controller.last_reason == f"tier-brownout:{TIER_BATCH}"
        assert controller.decide(fleet, make_request(TIER_STANDARD)) is Decision.ADMIT
        assert controller.decide(fleet, make_request(TIER_INTERACTIVE)) is Decision.ADMIT

    def test_standard_sheds_at_its_own_fraction(self):
        controller = self.controller()
        fleet = StubFleet(outstanding=6)  # 6 >= int(8 * 0.8)
        assert controller.decide(fleet, make_request(TIER_STANDARD)) is Decision.SHED
        assert controller.last_reason == f"tier-brownout:{TIER_STANDARD}"
        assert controller.decide(fleet, make_request(TIER_INTERACTIVE)) is Decision.ADMIT

    def test_interactive_queues_at_full_capacity(self):
        """Top rank gets the whole budget, then the base queue/shed rules."""
        controller = self.controller()  # mode defaults to "queue"
        fleet = StubFleet(outstanding=8)
        assert controller.decide(fleet, make_request(TIER_INTERACTIVE)) is Decision.QUEUE
        assert controller.last_reason == "capacity"

    def test_below_every_threshold_admits_all_tiers(self):
        controller = self.controller()
        fleet = StubFleet(outstanding=3)
        for tier in (TIER_BATCH, TIER_STANDARD, TIER_INTERACTIVE):
            assert controller.decide(fleet, make_request(tier)) is Decision.ADMIT

    def test_shed_by_tier_accounting(self):
        controller = self.controller()
        fleet = StubFleet(outstanding=6)
        controller.decide(fleet, make_request(TIER_BATCH))
        controller.decide(fleet, make_request(TIER_BATCH))
        controller.decide(fleet, make_request(TIER_STANDARD))
        assert controller.shed_by_tier == {TIER_BATCH: 2, TIER_STANDARD: 1}

    def test_low_tier_sheds_on_ttft_divergence_even_with_headroom(self):
        controller = self.controller(capacity=64, ttft_shed_threshold=1.0)
        for _ in range(8):
            controller.observe_ttft(5.0)
        fleet = StubFleet(outstanding=0)
        assert controller.decide(fleet, make_request(TIER_BATCH)) is Decision.SHED
        assert controller.last_reason == f"tier-brownout:{TIER_BATCH}"
        # Interactive hits the base rule instead.
        assert controller.decide(fleet, make_request(TIER_INTERACTIVE)) is Decision.SHED
        assert controller.last_reason == "ttft-divergence"

    def test_untagged_request_treated_as_default_tier(self):
        controller = self.controller()
        fleet = StubFleet(outstanding=6)
        # Untagged -> standard (rank 1, fraction 0.8): sheds at 6/8.
        assert controller.decide(fleet, make_request()) is Decision.SHED
        assert controller.last_reason == f"tier-brownout:{TIER_STANDARD}"

    def test_no_request_falls_back_to_base_behaviour(self):
        controller = self.controller()
        assert controller.decide(StubFleet(outstanding=0)) is Decision.ADMIT
        assert controller.decide(StubFleet(outstanding=8)) is Decision.QUEUE
