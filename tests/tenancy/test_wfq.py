"""Unit tests for the weighted-fair waiting queue."""

import pytest

from repro.kvcache import new_segment
from repro.tenancy import TIER_BATCH, TIER_INTERACTIVE, TenancyConfig, Tenant, WFQQueue
from repro.workloads import Request


class StubState:
    """Bare RequestState stand-in: the queue only reads ``.request``."""

    def __init__(self, tenant, tokens=100, tier=None):
        self.request = Request(
            session_id=0,
            turn_index=0,
            arrival_time=0.0,
            history=[],
            new_input=new_segment(tokens),
            output_tokens=5,
            tenant=tenant,
            tier=tier,
        )

    def __repr__(self):
        return f"StubState({self.request.tenant})"


def two_tenant_config() -> TenancyConfig:
    return TenancyConfig(
        tenants={
            "fast": Tenant("fast", tier=TIER_INTERACTIVE),  # weight 4
            "slow": Tenant("slow", tier=TIER_BATCH),  # weight 1
        }
    )


class TestDequeCompatibility:
    def test_fifo_within_one_tenant(self):
        queue = WFQQueue()
        states = [StubState("a") for _ in range(5)]
        for state in states:
            queue.append(state)
        assert [queue.popleft() for _ in range(5)] == states

    def test_len_bool_contains(self):
        queue = WFQQueue()
        assert not queue
        state = StubState("a")
        queue.append(state)
        assert queue and len(queue) == 1
        assert state in queue
        assert StubState("a") not in queue
        queue.popleft()
        assert not queue and state not in queue

    def test_peek_matches_popleft(self):
        queue = WFQQueue(two_tenant_config())
        for state in [StubState("slow"), StubState("fast")]:
            queue.append(state)
        head = queue[0]
        assert queue.popleft() is head
        with pytest.raises(IndexError):
            queue[1]

    def test_pop_empty_raises(self):
        queue = WFQQueue()
        with pytest.raises(IndexError):
            queue.popleft()
        with pytest.raises(IndexError):
            queue[0]

    def test_iteration_is_dispatch_order(self):
        queue = WFQQueue(two_tenant_config())
        states = [StubState("slow"), StubState("fast"), StubState("fast")]
        for state in states:
            queue.append(state)
        order = list(queue)
        assert order == [queue.popleft() for _ in range(3)]


class TestFairness:
    def test_heavier_tenant_dispatches_first_under_backlog(self):
        queue = WFQQueue(two_tenant_config())
        fast = [StubState("fast") for _ in range(4)]
        slow = [StubState("slow") for _ in range(4)]
        # Adversarial enqueue order: the slow tenant arrives first each round.
        for s, f in zip(slow, fast):
            queue.append(s)
            queue.append(f)
        order = [queue.popleft() for _ in range(8)]
        # 4:1 weights, equal costs: the fast tenant owns the first 3 slots
        # and gets 4 of the first 5 dispatches.
        assert order[:3] == fast[:3]
        assert sum(1 for s in order[:5] if s in fast) == 4

    def test_equal_weights_interleave_by_arrival(self):
        queue = WFQQueue()  # default tier for everyone -> equal weights
        a = [StubState("a") for _ in range(3)]
        b = [StubState("b") for _ in range(3)]
        for x, y in zip(a, b):
            queue.append(x)
            queue.append(y)
        order = [queue.popleft() for _ in range(6)]
        assert order == [a[0], b[0], a[1], b[1], a[2], b[2]]

    def test_cost_matters_cheap_requests_overtake(self):
        queue = WFQQueue()
        expensive = StubState("a", tokens=10_000)
        cheap = StubState("b", tokens=10)
        queue.append(expensive)
        queue.append(cheap)
        assert queue.popleft() is cheap

    def test_past_service_carries_forward_per_tenant(self):
        """A tenant that already consumed service re-enters behind its own
        finish tag, so it cannot leapfrog a lighter backlog it just beat."""
        queue = WFQQueue(two_tenant_config())
        first = StubState("slow", tokens=1000)
        queue.append(first)
        assert queue.popleft() is first
        late_slow = StubState("slow", tokens=100)
        late_fast = StubState("fast", tokens=100)
        queue.append(late_slow)
        queue.append(late_fast)
        assert queue.popleft() is late_fast  # by weight and history


class TestFrontLane:
    def test_appendleft_bypasses_arbitration(self):
        queue = WFQQueue(two_tenant_config())
        batch = StubState("slow")
        queue.append(StubState("fast"))
        queue.append(batch)
        queue.appendleft(batch)  # put-back after preemption
        assert queue[0] is batch
        assert queue.popleft() is batch

    def test_front_lane_is_lifo_like_a_deque_head(self):
        queue = WFQQueue()
        a, b = StubState("a"), StubState("b")
        queue.appendleft(a)
        queue.appendleft(b)
        assert queue.popleft() is b
        assert queue.popleft() is a


class TestRemove:
    def test_remove_from_heap(self):
        queue = WFQQueue()
        a, b = StubState("a"), StubState("b")
        queue.append(a)
        queue.append(b)
        queue.remove(a)
        assert len(queue) == 1
        assert a not in queue
        assert queue.popleft() is b

    def test_remove_from_front_lane(self):
        queue = WFQQueue()
        a = StubState("a")
        queue.appendleft(a)
        queue.remove(a)
        assert not queue

    def test_remove_missing_raises(self):
        queue = WFQQueue()
        with pytest.raises(ValueError):
            queue.remove(StubState("a"))
