"""Integration tests: tenancy threaded through serving, routing and bench.

The load-bearing invariant: an untagged workload on the default (FIFO)
path must produce byte-identical results to the pre-tenancy stack, and the
same workload under WFQ with no tenant tags must *still* match — a single
tenant's fair queue degenerates to FIFO.
"""

from collections import deque

import pytest

from repro.baselines import ChunkedPrefillServer
from repro.bench import run_system
from repro.cluster import Fleet, FleetConfig, TenantAffinityPolicy
from repro.serving.config import ServingConfig
from repro.sim import Simulator
from repro.tenancy import (
    TIER_BATCH,
    TIER_INTERACTIVE,
    TenancyConfig,
    Tenant,
    TenantRateLimiter,
    WFQQueue,
)
from repro.workloads import sharegpt_workload, tag_workload


def chunked_factory(sim, cfg):
    return ChunkedPrefillServer(sim, cfg, token_budget=256)


class TestDefaultPath:
    def test_fifo_policy_uses_plain_deque(self, sim, cfg_8b_single):
        system = chunked_factory(sim, cfg_8b_single)
        assert type(system.waiting) is deque

    def test_ttft_target_reduces_to_slo_without_tenancy(self, sim, cfg_8b_single):
        system = chunked_factory(sim, cfg_8b_single)
        request = sharegpt_workload(1, rate=1.0, seed=0).requests[0]
        assert system.ttft_target_for(request) == cfg_8b_single.slo.ttft_target(
            request.input_tokens
        )
        assert system.qos_rank_for(request) == 0

    def test_invalid_queue_policy_rejected(self, cfg_8b_single):
        with pytest.raises(ValueError):
            ServingConfig(
                model=cfg_8b_single.model,
                spec=cfg_8b_single.spec,
                n_gpus=1,
                queue_policy="lifo",
            )


class TestByteIdentity:
    def test_untagged_wfq_matches_fifo_exactly(self, cfg_8b_single):
        """One tenant's weighted-fair queue degenerates to FIFO, so the
        whole run — every latency sample — must be identical."""
        workload = sharegpt_workload(40, rate=8.0, seed=3)
        fifo = run_system(chunked_factory, cfg_8b_single, workload)
        wfq_cfg = ServingConfig(
            model=cfg_8b_single.model,
            spec=cfg_8b_single.spec,
            n_gpus=1,
            queue_policy="wfq",
            tenancy=TenancyConfig(),
        )
        wfq = run_system(chunked_factory, wfq_cfg, workload)
        assert fifo.summary.as_dict() == wfq.summary.as_dict()

    def test_wfq_system_smoke_with_tags(self, cfg_8b_single):
        tenancy = TenancyConfig(
            tenants={
                "chat": Tenant("chat", tier=TIER_INTERACTIVE),
                "jobs": Tenant("jobs", tier=TIER_BATCH),
            }
        )
        cfg = ServingConfig(
            model=cfg_8b_single.model,
            spec=cfg_8b_single.spec,
            n_gpus=1,
            queue_policy="wfq",
            tenancy=tenancy,
        )
        workload = tag_workload(sharegpt_workload(30, rate=20.0, seed=1), "chat")
        result = run_system(chunked_factory, cfg, workload)
        assert result.summary.requests_finished == 30

    def test_make_waiting_queue_respects_policy(self, sim, cfg_8b_single):
        cfg = ServingConfig(
            model=cfg_8b_single.model,
            spec=cfg_8b_single.spec,
            n_gpus=1,
            queue_policy="wfq",
            tenancy=TenancyConfig(),
        )
        system = chunked_factory(sim, cfg)
        assert isinstance(system.waiting, WFQQueue)
        assert system.waiting.tenancy is cfg.tenancy


class TestRouterIngress:
    def test_rate_limited_requests_are_shed_at_ingress(self, cfg_8b_single):
        tenancy = TenancyConfig(
            tenants={
                "flood": Tenant(
                    "flood", tier=TIER_BATCH, rate_tokens_per_s=1.0, burst_tokens=1.0
                )
            }
        )
        workload = tag_workload(sharegpt_workload(10, rate=50.0, seed=2), "flood")
        sim = Simulator()
        fleet = Fleet(
            sim,
            chunked_factory,
            cfg_8b_single,
            FleetConfig(replicas=1, ingress=TenantRateLimiter(tenancy)),
        )
        fleet.submit(workload)
        sim.run(until=3600.0)
        assert fleet.router.requests_rate_limited > 0
        summary = fleet.summarize()
        # Denied requests are shed, and conservation still holds.
        assert fleet.router.requests_shed == fleet.router.requests_rate_limited
        assert (
            summary.requests_total + fleet.router.requests_shed == len(workload)
        )

    def test_unlimited_tenants_flow_through_ingress(self, cfg_8b_single):
        tenancy = TenancyConfig()
        workload = sharegpt_workload(10, rate=5.0, seed=2)
        sim = Simulator()
        fleet = Fleet(
            sim,
            chunked_factory,
            cfg_8b_single,
            FleetConfig(replicas=1, ingress=TenantRateLimiter(tenancy)),
        )
        fleet.submit(workload)
        sim.run(until=3600.0)
        assert fleet.router.requests_rate_limited == 0
        assert fleet.summarize().requests_finished == len(workload)


class TestTenantAffinity:
    def test_same_tenant_same_replica(self, cfg_8b_single):
        policy = TenantAffinityPolicy()
        sim = Simulator()
        fleet = Fleet(
            sim, chunked_factory, cfg_8b_single, FleetConfig(replicas=4)
        )
        replicas = fleet.routable_replicas()
        a = tag_workload(sharegpt_workload(5, rate=1.0, seed=0), "acme").requests
        picks = {policy.choose(replicas, r).index for r in a}
        assert len(picks) == 1

    def test_different_tenants_can_spread(self, cfg_8b_single):
        policy = TenantAffinityPolicy()
        sim = Simulator()
        fleet = Fleet(
            sim, chunked_factory, cfg_8b_single, FleetConfig(replicas=4)
        )
        replicas = fleet.routable_replicas()
        picks = set()
        for tenant in ("a", "b", "c", "d", "e", "f"):
            workload = tag_workload(sharegpt_workload(1, rate=1.0, seed=0), tenant)
            picks.add(policy.choose(replicas, workload.requests[0]).index)
        assert len(picks) > 1
