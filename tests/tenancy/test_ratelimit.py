"""Unit tests for per-tenant ingress rate limiting and quotas."""

import pytest

from repro.kvcache import new_segment
from repro.tenancy import TenancyConfig, Tenant, TenantRateLimiter, TokenBucket
from repro.workloads import Request


def make_request(tenant, tokens=100) -> Request:
    return Request(
        session_id=0,
        turn_index=0,
        arrival_time=0.0,
        history=[],
        new_input=new_segment(tokens),
        output_tokens=5,
        tenant=tenant,
    )


class TestTokenBucket:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=10.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0.0)

    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, capacity=100.0)
        assert bucket.try_consume(60.0, now=0.0)
        assert bucket.try_consume(40.0, now=0.0)
        assert not bucket.try_consume(1.0, now=0.0)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=10.0, capacity=100.0)
        assert bucket.try_consume(100.0, now=0.0)
        assert not bucket.try_consume(50.0, now=1.0)  # only 10 back
        assert bucket.try_consume(50.0, now=5.0)  # 50 back by t=5

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(rate=1000.0, capacity=10.0)
        bucket.try_consume(10.0, now=0.0)
        bucket.try_consume(0.0, now=100.0)
        assert bucket.tokens <= 10.0

    def test_oversized_cost_allowed_from_full_via_debt(self):
        """A request larger than the burst passes when the bucket is full
        and drives the level negative (repaid through refill)."""
        bucket = TokenBucket(rate=10.0, capacity=100.0)
        assert bucket.try_consume(250.0, now=0.0)
        assert bucket.tokens == pytest.approx(-150.0)
        assert not bucket.try_consume(10.0, now=1.0)  # still in debt
        assert bucket.try_consume(10.0, now=30.0)  # debt repaid


class TestTenantRateLimiter:
    def limiter(self, **tenant_kwargs) -> TenantRateLimiter:
        tenancy = TenancyConfig(tenants={"acme": Tenant("acme", **tenant_kwargs)})
        return TenantRateLimiter(tenancy)

    def test_unlimited_tenant_passes(self):
        limiter = self.limiter()
        assert limiter.admit(make_request("acme"), now=0.0) is None
        assert limiter.admit(make_request("someone-else"), now=0.0) is None
        assert limiter.admit(make_request(None), now=0.0) is None

    def test_rate_limit_denies_with_reason(self):
        limiter = self.limiter(rate_tokens_per_s=100.0, burst_tokens=150.0)
        assert limiter.admit(make_request("acme", tokens=150), now=0.0) is None
        reason = limiter.admit(make_request("acme", tokens=150), now=0.0)
        assert reason == "rate-limit:acme"
        # Refill restores admission.
        assert limiter.admit(make_request("acme", tokens=100), now=2.0) is None

    def test_burst_defaults_to_one_second_of_refill(self):
        limiter = self.limiter(rate_tokens_per_s=100.0)
        assert limiter._buckets["acme"].capacity == pytest.approx(100.0)

    def test_quota_denies_permanently(self):
        limiter = self.limiter(quota_tokens=250.0)
        assert limiter.admit(make_request("acme", tokens=200), now=0.0) is None
        reason = limiter.admit(make_request("acme", tokens=100), now=1000.0)
        assert reason == "quota:acme"
        # Still room for a smaller request under the cap.
        assert limiter.admit(make_request("acme", tokens=50), now=1000.0) is None

    def test_usage_accounting(self):
        limiter = self.limiter(rate_tokens_per_s=100.0, quota_tokens=150.0)
        limiter.admit(make_request("acme", tokens=100), now=0.0)
        limiter.admit(make_request("acme", tokens=100), now=0.0)  # quota deny
        limiter.admit(make_request("acme", tokens=50), now=0.0)  # rate deny
        usage = limiter.usage["acme"]
        assert usage.admitted_requests == 1
        assert usage.admitted_tokens == 100
        assert usage.denied_quota == 1
        assert usage.denied_rate == 1
        assert usage.denied_requests == 2

    def test_other_tenants_unaffected_by_one_tenants_limits(self):
        limiter = self.limiter(rate_tokens_per_s=1.0, burst_tokens=1.0)
        assert limiter.admit(make_request("acme", tokens=100), now=0.0) is None  # debt
        assert limiter.admit(make_request("acme", tokens=100), now=1.0) is not None
        assert limiter.admit(make_request("bystander", tokens=100), now=1.0) is None
