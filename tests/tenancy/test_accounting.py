"""Unit tests for per-tier/per-tenant accounting and fairness."""

import math

import pytest

from repro.kvcache import new_segment
from repro.serving import SLO, MetricsCollector
from repro.tenancy import (
    TIER_BATCH,
    TIER_INTERACTIVE,
    TIER_STANDARD,
    TenancyConfig,
    jain_fairness_index,
    tenant_usage,
    tier_reports,
    weighted_fairness,
)
from repro.workloads import Request

BASE_SLO = SLO(tbt=0.1, ttft=10.0, ttft_per_token=None)

_ids = iter(range(10_000, 20_000))


def make_request(tenant=None, tier=None, tokens=100, output_tokens=3) -> Request:
    return Request(
        session_id=0,
        turn_index=0,
        arrival_time=0.0,
        history=[],
        new_input=new_segment(tokens),
        output_tokens=output_tokens,
        request_id=next(_ids),
        tenant=tenant,
        tier=tier,
    )


def serve(metrics, request, ttft=0.5, gap=0.05):
    """Drive one request through the collector with a fixed TTFT and TBT."""
    metrics.on_arrival(request, 0.0)
    metrics.on_prefill_done(request, ttft, request.input_tokens)
    t = ttft
    for _ in range(request.output_tokens - 1):
        t += gap
        metrics.on_tokens(request, t)
    return request


class TestJainIndex:
    def test_empty_is_nan(self):
        assert math.isnan(jain_fairness_index([]))

    def test_equal_shares_are_perfectly_fair(self):
        assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_share(self):
        assert jain_fairness_index([42.0]) == pytest.approx(1.0)

    def test_starved_shares_lower_the_index(self):
        # One of two tenants got everything: J = 1/2.
        assert jain_fairness_index([10.0, 0.0]) == pytest.approx(0.5)

    def test_all_zero_is_fair(self):
        assert jain_fairness_index([0.0, 0.0]) == pytest.approx(1.0)


class TestTierReports:
    def test_slices_by_tier_in_rank_order(self):
        metrics = MetricsCollector(BASE_SLO)
        serve(metrics, make_request(tier=TIER_BATCH))
        serve(metrics, make_request(tier=TIER_INTERACTIVE))
        reports = tier_reports(metrics, TenancyConfig(), BASE_SLO)
        assert [r.tier for r in reports] == [TIER_INTERACTIVE, TIER_BATCH]
        assert all(r.requests_total == 1 for r in reports)

    def test_empty_tiers_omitted(self):
        metrics = MetricsCollector(BASE_SLO)
        serve(metrics, make_request(tier=TIER_STANDARD))
        reports = tier_reports(metrics, TenancyConfig(), BASE_SLO)
        assert [r.tier for r in reports] == [TIER_STANDARD]

    def test_tier_judged_against_its_own_slo(self):
        """A 150 ms gap misses the interactive TBT but fits batch's 4x."""
        metrics = MetricsCollector(BASE_SLO)
        serve(metrics, make_request(tier=TIER_INTERACTIVE, output_tokens=10), gap=0.15)
        serve(metrics, make_request(tier=TIER_BATCH, output_tokens=10), gap=0.15)
        reports = {r.tier: r for r in tier_reports(metrics, TenancyConfig(), BASE_SLO)}
        assert reports[TIER_INTERACTIVE].tbt_attainment == pytest.approx(0.0)
        assert reports[TIER_BATCH].tbt_attainment == pytest.approx(1.0)
        assert reports[TIER_INTERACTIVE].goodput_tokens_per_s == 0.0
        assert reports[TIER_BATCH].goodput_tokens_per_s > 0.0

    def test_untagged_requests_land_in_default_tier(self):
        metrics = MetricsCollector(BASE_SLO)
        serve(metrics, make_request())
        reports = tier_reports(metrics, TenancyConfig(), BASE_SLO)
        assert [r.tier for r in reports] == [TIER_STANDARD]

    def test_goodput_counts_only_finished_slo_met_requests(self):
        metrics = MetricsCollector(BASE_SLO)
        good = serve(metrics, make_request(tier=TIER_STANDARD))
        # Unfinished request: prefill done, but not all tokens emitted.
        straggler = make_request(tier=TIER_STANDARD, output_tokens=50)
        metrics.on_arrival(straggler, 0.0)
        metrics.on_prefill_done(straggler, 0.5, straggler.input_tokens)
        reports = {r.tier: r for r in tier_reports(metrics, TenancyConfig(), BASE_SLO)}
        report = reports[TIER_STANDARD]
        assert report.requests_total == 2
        assert report.requests_finished == 1
        expected_useful = good.input_tokens + good.output_tokens
        assert report.useful_tokens == expected_useful


class TestWeightedFairness:
    def test_usage_by_tenant(self):
        metrics = MetricsCollector(BASE_SLO)
        serve(metrics, make_request(tenant="a", tokens=100, output_tokens=10))
        serve(metrics, make_request(tenant="b", tokens=50, output_tokens=10))
        usage = tenant_usage(metrics, TenancyConfig())
        assert usage == {"a": 110, "b": 60}

    def _config(self) -> TenancyConfig:
        from repro.tenancy import Tenant

        return TenancyConfig(
            tenants={
                "fast": Tenant("fast", tier=TIER_INTERACTIVE),  # weight 4
                "slow": Tenant("slow", tier=TIER_BATCH),  # weight 1
            }
        )

    def test_weight_proportional_service_is_fair(self):
        """4:1 service at 4:1 weights normalises to equal shares -> J = 1."""
        config = self._config()
        metrics = MetricsCollector(BASE_SLO)
        for _ in range(4):
            serve(metrics, make_request(tenant="fast", tier=TIER_INTERACTIVE))
        serve(metrics, make_request(tenant="slow", tier=TIER_BATCH))
        # fast: 4 x 103 useful tokens at weight 4; slow: 103 at weight 1.
        assert weighted_fairness(metrics, config) == pytest.approx(1.0)

    def test_starving_a_tenant_of_weighted_share_is_unfair(self):
        config = self._config()
        metrics = MetricsCollector(BASE_SLO)
        serve(metrics, make_request(tenant="fast", tier=TIER_INTERACTIVE))
        serve(metrics, make_request(tenant="slow", tier=TIER_BATCH))
        # Equal raw service at 4:1 weights is *not* weighted-fair.
        assert weighted_fairness(metrics, config) < 1.0
