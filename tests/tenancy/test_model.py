"""Unit tests for the tenant/tier model."""

import pytest

from repro.kvcache import new_segment
from repro.serving import SLO
from repro.tenancy import (
    DEFAULT_TENANT,
    TIER_BATCH,
    TIER_INTERACTIVE,
    TIER_STANDARD,
    TenancyConfig,
    Tenant,
    TenantClass,
    default_classes,
)
from repro.workloads import Request


def make_request(tenant=None, tier=None, tokens=100) -> Request:
    return Request(
        session_id=0,
        turn_index=0,
        arrival_time=0.0,
        history=[],
        new_input=new_segment(tokens),
        output_tokens=5,
        tenant=tenant,
        tier=tier,
    )


class TestTenantClass:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TenantClass("x", weight=0.0)
        with pytest.raises(ValueError):
            TenantClass("x", tbt_scale=0.0)
        with pytest.raises(ValueError):
            TenantClass("x", ttft_scale=-1.0)

    def test_identity_scales_return_base_slo_object(self):
        base = SLO(tbt=0.05)
        assert TenantClass("x").slo(base) is base

    def test_scaled_slo(self):
        base = SLO(tbt=0.05, ttft=1.0, ttft_per_token=0.001)
        scaled = TenantClass("x", tbt_scale=4.0, ttft_scale=10.0).slo(base)
        assert scaled.tbt == pytest.approx(0.2)
        assert scaled.ttft == pytest.approx(10.0)
        assert scaled.ttft_per_token == pytest.approx(0.01)
        assert scaled.attainment_percentile == base.attainment_percentile


class TestTenant:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            Tenant("a", weight=0.0)
        with pytest.raises(ValueError):
            Tenant("a", rate_tokens_per_s=-1.0)
        with pytest.raises(ValueError):
            Tenant("a", burst_tokens=0.0)
        with pytest.raises(ValueError):
            Tenant("a", quota_tokens=0.0)


class TestTenancyConfig:
    def test_default_ladder(self):
        classes = default_classes()
        assert classes[TIER_INTERACTIVE].rank > classes[TIER_STANDARD].rank
        assert classes[TIER_STANDARD].rank > classes[TIER_BATCH].rank
        assert classes[TIER_INTERACTIVE].weight > classes[TIER_BATCH].weight

    def test_validation(self):
        with pytest.raises(ValueError):
            TenancyConfig(default_tier="nope")
        with pytest.raises(ValueError):
            TenancyConfig(tenants={"a": Tenant("b")})
        with pytest.raises(ValueError):
            TenancyConfig(tenants={"a": Tenant("a", tier="nope")})
        with pytest.raises(ValueError):
            TenancyConfig(classes={"x": TenantClass("y")})

    def test_untagged_request_resolves_to_default(self):
        config = TenancyConfig()
        request = make_request()
        assert config.tenant_of(request) == DEFAULT_TENANT
        assert config.tier_of(request) == TIER_STANDARD
        assert config.weight_of(request) == config.classes[TIER_STANDARD].weight
        assert config.rank_of(request) == config.classes[TIER_STANDARD].rank

    def test_tenant_membership_resolves_tier(self):
        config = TenancyConfig(tenants={"acme": Tenant("acme", tier=TIER_BATCH)})
        request = make_request(tenant="acme")
        assert config.tier_of(request) == TIER_BATCH
        assert config.rank_of(request) == 0

    def test_explicit_tier_tag_wins(self):
        config = TenancyConfig(tenants={"acme": Tenant("acme", tier=TIER_BATCH)})
        request = make_request(tenant="acme", tier=TIER_INTERACTIVE)
        assert config.tier_of(request) == TIER_INTERACTIVE

    def test_unknown_tier_tag_falls_back(self):
        config = TenancyConfig()
        assert config.tier_of(make_request(tier="mystery")) == TIER_STANDARD

    def test_unregistered_tenant_lands_in_default_tier(self):
        config = TenancyConfig()
        assert config.tier_of(make_request(tenant="stranger")) == TIER_STANDARD

    def test_tenant_weight_override(self):
        config = TenancyConfig(
            tenants={"vip": Tenant("vip", tier=TIER_BATCH, weight=9.0)}
        )
        assert config.weight_of(make_request(tenant="vip")) == 9.0

    def test_ttft_target_scales_with_tier(self):
        config = TenancyConfig()
        base = SLO(tbt=0.05, ttft=1.0, ttft_per_token=None)
        interactive = make_request(tier=TIER_INTERACTIVE)
        batch = make_request(tier=TIER_BATCH)
        assert config.ttft_target(interactive, base) == pytest.approx(0.5)
        assert config.ttft_target(batch, base) == pytest.approx(10.0)

    def test_tier_names_rank_order(self):
        config = TenancyConfig()
        assert config.tier_names() == [TIER_INTERACTIVE, TIER_STANDARD, TIER_BATCH]
