"""The noisy-neighbor isolation study: acceptance properties at small scale.

Full-scale numbers live in the CI tenancy-smoke job; this test pins the
same qualitative contract cheaply: FIFO lets the batch flood wreck the
interactive tier, WFQ+tiered-brownout keeps it within a hair of isolated.
"""

import pytest

from repro.bench.tenancy import (
    BATCH_TENANT,
    CHAT_TENANT,
    compare_isolation,
    noisy_neighbor_workload,
)
from repro.tenancy import TIER_BATCH, TIER_INTERACTIVE

SCALE = 0.25


@pytest.fixture(scope="module")
def study():
    return compare_isolation(scale=SCALE)


class TestWorkload:
    def test_noisy_neighbor_is_tagged_and_merged(self):
        workload = noisy_neighbor_workload(scale=0.1)
        tenants = {r.tenant for r in workload}
        assert tenants == {CHAT_TENANT, BATCH_TENANT}
        tiers = {r.tier for r in workload}
        assert tiers == {TIER_INTERACTIVE, TIER_BATCH}
        arrivals = [r.arrival_time for r in workload]
        assert arrivals == sorted(arrivals)
        ids = [r.request_id for r in workload]
        assert len(set(ids)) == len(ids)

    def test_workload_is_deterministic(self):
        a = noisy_neighbor_workload(scale=0.1, seed=3)
        b = noisy_neighbor_workload(scale=0.1, seed=3)
        assert [(r.request_id, r.arrival_time, r.tenant) for r in a] == [
            (r.request_id, r.arrival_time, r.tenant) for r in b
        ]


class TestIsolationStudy:
    def test_fifo_degrades_interactive_badly(self, study):
        """The motivating failure: >= 10 pts of interactive TBT attainment
        lost to the batch flood under plain FIFO."""
        assert study.degradation("fifo") >= 10.0

    def test_brownout_holds_interactive_near_isolated(self, study):
        """The acceptance bar: WFQ + tiered brownout keeps the interactive
        tier within 2 pts of its isolated-run attainment."""
        assert study.degradation("wfq+brownout") <= 2.0

    def test_interactive_attains_at_least_batch_under_brownout(self, study):
        protected = study.contended["wfq+brownout"]
        batch = protected.attainment(TIER_BATCH)
        interactive = protected.attainment(TIER_INTERACTIVE)
        assert interactive >= batch or batch != batch  # NaN-safe

    def test_brownout_sheds_only_batch(self, study):
        protected = study.contended["wfq+brownout"]
        assert protected.requests_shed > 0
        assert set(protected.shed_by_tier) == {TIER_BATCH}

    def test_fifo_and_wfq_shed_nothing(self, study):
        assert study.contended["fifo"].requests_shed == 0
        assert study.contended["wfq"].requests_shed == 0

    def test_brownout_improves_weighted_fairness(self, study):
        assert (
            study.contended["wfq+brownout"].fairness
            > study.contended["fifo"].fairness
        )

    def test_every_mode_reports_both_tiers_when_served(self, study):
        for mode in ("fifo", "wfq"):
            tiers = {t.tier for t in study.contended[mode].tiers}
            assert tiers == {TIER_INTERACTIVE, TIER_BATCH}

    def test_as_dict_is_json_shaped(self, study):
        data = study.as_dict()
        assert set(data["contended"]) == {"fifo", "wfq", "wfq+brownout"}
        assert "degradation_pts" in data
        assert data["isolated"]["mode"] == "isolated"

    def test_tier_table_renders(self, study):
        from repro.bench import tier_table

        text = tier_table({m: r.tiers for m, r in study.contended.items()})
        assert "interactive" in text
        assert "TBT att%" in text
        assert "wfq+brownout" in text
